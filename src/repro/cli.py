"""Command-line interface: generate → build → query, file to file.

Usage::

    cn-probase generate --entities 2000 --seed 7 --out dump.jsonl
    cn-probase build --dump dump.jsonl --out taxonomy.jsonl
    cn-probase build --dump dump.jsonl --out taxonomy.jsonl --workers 4
    cn-probase build --dump dump.jsonl --out taxonomy.jsonl \
        --backend processes --workers 4
    cn-probase build --dump dump.jsonl --out taxonomy.jsonl --disable-stage ner
    cn-probase diff dump-old.jsonl dump-new.jsonl
    cn-probase build --dump dump-new.jsonl --out taxonomy2.jsonl \
        --incremental --previous taxonomy.jsonl --previous-dump dump-old.jsonl
    cn-probase delta-squash night1.delta.jsonl night2.delta.jsonl \
        -o squashed.delta.jsonl
    cn-probase stages
    cn-probase stages --trace taxonomy.jsonl.trace.json
    cn-probase stats --taxonomy taxonomy.jsonl
    cn-probase query --taxonomy taxonomy.jsonl men2ent 刘德华
    cn-probase query --taxonomy taxonomy.jsonl getConcept 刘德华#0
    cn-probase query --taxonomy taxonomy.jsonl getEntity 歌手
    cn-probase serve taxonomy.jsonl --shards 4 --replicas 2 --port 8321 \
        --admin-token s3cret
    cn-probase workload list
    cn-probase workload compile zipf_hot --out zipf_hot.schedule.jsonl
    cn-probase workload run                      # all 8, service + http
    cn-probase workload run publish_under_load --target http --time-scale 2
    cn-probase lint
    cn-probase lint --format json --select lock-discipline,determinism

``build --workers N`` runs independent generation sources concurrently
and shards per-relation-pure verifiers over relation chunks (output is
byte-identical to a serial build); ``--backend processes`` serves those
workers from a process pool on real cores instead of GIL-bound threads
(corpus segmentation fans out too); ``--no-resource-cache`` disables the
dump-fingerprint keyed reuse of harvested lexicon / segmented corpus /
PMI counts.  Every build writes a ``<out>.trace.json`` sidecar with the
per-stage seconds/workers/backend/cache columns; ``stages --trace``
pretty-prints the last one.

``diff`` reports the page-level difference between two dumps;
``build --incremental`` consumes it: the output taxonomy is
byte-identical to a full build and a ``<out>.delta.jsonl``
:class:`~repro.taxonomy.delta.TaxonomyDelta` is written alongside —
ready for ``POST /admin/apply-delta`` against a running ``serve``
cluster, which then republishes only the shards the delta touches.
``delta-squash`` composes N nightly deltas (oldest first) into one
equivalent delta — applying it is byte-identical to applying the chain
one by one, so a replica that missed N nights catches up with a single
publish.
The *speed* side of incrementality (per-page segment reuse, PMI
subtract/add, page-local generation replay) needs the warm in-process
caches of a long-lived nightly process — the
:meth:`~repro.core.pipeline.CNProbaseBuilder.build_incremental` Python
API — so a cold CLI invocation pays full-build cost and the verb's
value is the exact delta artifact (``resource_mode`` is printed so you
can tell which path ran).

``serve`` publishes the taxonomy over the :mod:`repro.serving` HTTP
cluster: ``--shards N`` key-hashes the read-optimized indexes into N
atomically-swappable shards, ``--replicas R`` spreads reads over R
replicas per shard with failover, ``--admin-token`` arms the
authenticated ``/admin/swap`` (hot-swap a rebuilt taxonomy file with
zero downtime) and ``/admin/shutdown`` endpoints, and ``--ready-file``
writes ``{"pid": ..., "host": ..., "port": ...}`` JSON once the socket
is accepting (``--port 0`` picks a free port) and removes it on clean
shutdown — readers validate the pid so a stale file from a crashed
server never passes for readiness.

``workload`` surfaces the :mod:`repro.workloads` harness: ``list`` the
eight built-in scenarios, ``compile`` one to a deterministic
timestamped schedule (same scenario + seed → byte-identical JSONL —
the printed sha256 proves it), and ``run`` replays scenarios open-loop
against serving targets (default: the in-process facade *and* a live
``cn-probase serve`` subprocess over HTTP), printing per-API
p50/p95/p99 + schedule lateness and appending per-scenario entries to
``benchmarks/out/BENCH_parallel.json``.  Publish-under-load scenarios
fire their delta publish mid-replay and exit non-zero on any
mixed-version answer.

``lint`` runs the :mod:`repro.analysis` checkers (determinism,
lock-discipline, pickle-safety, error-taxonomy, deprecation) over every
module of the installed package and exits 1 on any finding that is
neither pragma-acknowledged in source nor grandfathered in the shipped
baseline; ``--bench-json`` lands the counts as the ``static_analysis``
section of the perf trajectory, which is how ``run_smoke.sh`` gates
on it.

Every subcommand is importable (:func:`main` takes an argv list), which
is how the test suite drives it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    PreviousBuild,
)
from repro.core.stages import default_registry
from repro.encyclopedia import SyntheticWorld, diff_dumps, load_dump, save_dump
from repro.errors import ReproError
from repro.taxonomy import Taxonomy, TaxonomyAPI


def _cmd_generate(args: argparse.Namespace) -> int:
    world = SyntheticWorld.generate(seed=args.seed, n_entities=args.entities)
    n_pages = save_dump(world.dump(), args.out)
    print(f"wrote {n_pages} pages to {args.out}")
    return 0


def _trace_path(out: str) -> Path:
    return Path(f"{out}.trace.json")


def _cmd_build(args: argparse.Namespace) -> int:
    dump = load_dump(args.dump)
    config = PipelineConfig(
        enable_abstract=not args.no_abstract,
        enable_incompatible=not args.no_incompatible,
        enable_ner=not args.no_ner,
        enable_syntax=not args.no_syntax,
        neural=NeuralGenConfig(epochs=args.neural_epochs),
        max_generation_pages=args.max_generation_pages,
        workers=args.workers,
        backend=args.backend,
        parallel_floor=args.parallel_floor,
        resource_cache=not args.no_resource_cache,
    )
    registry = default_registry()
    for name in args.disable_stage or ():
        registry.disable(name)
    builder = CNProbaseBuilder(config, registry=registry)
    if args.incremental:
        if not args.previous or not args.previous_dump:
            print("error: --incremental needs --previous <taxonomy> and "
                  "--previous-dump <dump>", file=sys.stderr)
            return 2
        previous = PreviousBuild(
            dump=load_dump(args.previous_dump),
            taxonomy=Taxonomy.load(args.previous),
        )
        result = builder.build_incremental(dump, previous)
        delta_path = Path(f"{args.out}.delta.jsonl")
        Taxonomy.save_delta(result.delta, delta_path)
        diff = result.diff
        print(f"dump diff: {len(diff.added)} added, "
              f"{len(diff.changed)} changed, {len(diff.removed)} removed "
              f"(resources: {result.resource_mode})")
        summary = ", ".join(
            f"{k}={v}" for k, v in result.delta.summary().items() if v
        ) or "empty"
        print(f"delta: {summary}")
        print(f"wrote delta to {delta_path}")
    else:
        result = builder.build(dump)
    result.taxonomy.save(args.out)
    stats = result.taxonomy.stats()
    print(f"built {stats.n_isa_total} isA relations "
          f"({stats.n_entities} entities, {stats.n_concepts} concepts); "
          f"verification removed {result.n_removed} candidates")
    units = {"source": "candidates", "verifier": "removed", "driver": "items"}
    for record in result.stage_trace.ran():
        extras = ""
        if record.workers > 1:
            extras += f", workers={record.workers}"
        if record.cache_hit:
            extras += ", cached"
        print(f"stage {record.name} ({record.kind}): "
              f"{record.count} {units[record.kind]} "
              f"in {record.seconds:.2f}s{extras}")
    trace_path = _trace_path(args.out)
    trace_path.write_text(
        json.dumps(
            {
                "total_seconds": result.stage_trace.total_seconds,
                "workers": config.workers,
                "backend": builder.plan().backend,
                "stages": result.stage_trace.as_dict(),
            },
            ensure_ascii=False,
            indent=2,
        ),
        encoding="utf-8",
    )
    print(f"wrote taxonomy to {args.out}")
    print(f"wrote stage trace to {trace_path}")
    return 0


def _cmd_stages(args: argparse.Namespace) -> int:
    if args.trace is not None:
        return _print_trace(args.trace)
    registry = default_registry()
    print(f"{'name':<14} {'kind':<10} {'enabled':<8} origin")
    for entry in registry.entries():
        enabled = "yes" if entry.enabled else "no"
        print(f"{entry.name:<14} {entry.kind:<10} {enabled:<8} {entry.origin}")
    return 0


def _print_trace(path: str) -> int:
    """Render a build's ``<out>.trace.json`` sidecar as a stage table."""
    source = Path(path)
    if not source.exists():
        print(f"error: trace file not found: {source}", file=sys.stderr)
        return 2
    try:
        trace = json.loads(source.read_text(encoding="utf-8"))
        stages = trace.get("stages", {}) if isinstance(trace, dict) else None
        if not isinstance(stages, dict):
            raise ValueError("no 'stages' table")
        # Format eagerly so wrong-typed fields fail here, not mid-print.
        rows = [
            f"{name:<14} {record['kind']:<10} "
            f"{float(record['seconds']):>8.3f} {int(record['count']):>8} "
            f"{int(record.get('workers', 1)):>8} "
            f"{str(record.get('backend', 'serial')):>10} "
            f"{'hit' if record.get('cache_hit') else '-':>6} "
            f"{'yes' if record.get('ran', True) else 'no'}"
            for name, record in stages.items()
        ]
        total = trace.get("total_seconds")
        footer = None
        if total is not None:
            footer = (f"total: {float(total):.3f}s (build ran with "
                      f"workers={int(trace.get('workers', 1))}, "
                      f"backend={trace.get('backend', 'serial')})")
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {source} is not a build trace sidecar "
              f"(expected the <out>.trace.json a build writes): {exc}",
              file=sys.stderr)
        return 2
    print(f"{'name':<14} {'kind':<10} {'seconds':>8} {'count':>8} "
          f"{'workers':>8} {'backend':>10} {'cache':>6} ran")
    for row in rows:
        print(row)
    if footer is not None:
        print(footer)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    old = load_dump(args.old_dump)
    new = load_dump(args.new_dump)
    diff = diff_dumps(old, new)
    if diff.is_empty:
        print("dumps are identical (page-level)")
    for label, ids in (
        ("added", diff.added),
        ("changed", diff.changed),
        ("removed", diff.removed),
    ):
        if not ids:
            continue
        preview = ", ".join(ids[:8]) + (", ..." if len(ids) > 8 else "")
        print(f"{label}: {len(ids)} ({preview})")
    if args.json:
        Path(args.json).write_text(
            json.dumps(diff.as_dict(), ensure_ascii=False, indent=2),
            encoding="utf-8",
        )
        print(f"wrote diff to {args.json}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    taxonomy = Taxonomy.load(args.taxonomy)
    for key, value in taxonomy.stats().as_dict().items():
        print(f"{key}: {value}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    taxonomy = Taxonomy.load(args.taxonomy)
    api = TaxonomyAPI(taxonomy)
    handlers = {
        "men2ent": api.men2ent,
        "getConcept": api.get_concept,
        "getEntity": api.get_entity,
    }
    results = handlers[args.api](args.argument)
    if not results:
        print("(no results)")
        return 1
    for item in results:
        print(item)
    return 0


def _cmd_delta_squash(args: argparse.Namespace) -> int:
    from repro.taxonomy.delta import compose, load_delta, save_delta

    deltas = [load_delta(path) for path in args.deltas]
    composed = compose(deltas)
    save_delta(composed, args.out)
    chained_records = sum(delta.n_records for delta in deltas)
    summary = ", ".join(
        f"{key}={value}" for key, value in composed.summary().items() if value
    ) or "empty"
    print(f"squashed {len(deltas)} deltas ({chained_records} records) "
          f"into {composed.n_records} records")
    print(f"composed delta: {summary}")
    print(f"wrote {args.out}")
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    from repro.serving import TaxonomyClient

    client = TaxonomyClient(args.url, admin_token=args.admin_token)
    if args.format == "text":
        print(client.server_metrics_text(), end="")
    else:
        print(json.dumps(
            client.server_metrics(), ensure_ascii=False, indent=2
        ))
    if args.traces:
        if not args.admin_token:
            print("error: --traces needs --admin-token", file=sys.stderr)
            return 2
        payload = client.fetch_traces(limit=args.traces)
        for span in payload["spans"]:
            print(json.dumps(span, ensure_ascii=False))
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    """Follow the server's structured event log (``--once`` for one poll)."""
    import time as _time

    from repro.serving import TaxonomyClient

    client = TaxonomyClient(args.url, admin_token=args.admin_token)
    since = args.since
    while True:
        payload = client.fetch_events(since=since)
        for event in payload["events"]:
            print(json.dumps(event, ensure_ascii=False), flush=True)
        since = max(since, payload["last_seq"])
        if args.once:
            return 0
        _time.sleep(args.interval)


def _cmd_workload_list(args: argparse.Namespace) -> int:
    from repro.workloads import builtin_scenarios

    print(f"{'scenario':<20} {'seed':>4} {'calls':>6}  description")
    for scenario in builtin_scenarios():
        print(f"{scenario.name:<20} {scenario.seed:>4} "
              f"{scenario.traffic.n_calls:>6}  {scenario.description}")
    return 0


def _cmd_workload_compile(args: argparse.Namespace) -> int:
    import hashlib
    from dataclasses import replace

    from repro.workloads import get_scenario, save_schedule
    from repro.workloads.schedule import compile_schedule, dumps_schedule
    from repro.workloads.sampling import ArgumentPools

    scenario = get_scenario(args.scenario)
    if args.seed is not None:
        scenario = replace(scenario, seed=args.seed)
    world = scenario.world.build_world(scenario.seed)
    schedule = compile_schedule(scenario, ArgumentPools.from_world(world))
    save_schedule(schedule, args.out)
    digest = hashlib.sha256(
        dumps_schedule(schedule).encode("utf-8")
    ).hexdigest()
    print(f"compiled {scenario.name} (seed {scenario.seed}): "
          f"{schedule.n_events} events / {schedule.n_calls} calls "
          f"over {schedule.duration_s:.2f}s")
    print(f"wrote {args.out} (sha256 {digest[:16]}...; same scenario + "
          "seed always reproduces these exact bytes)")
    return 0


def _cmd_workload_run(args: argparse.Namespace) -> int:
    from repro.workloads import (
        append_scenario_entry,
        builtin_scenarios,
        get_scenario,
        prepare_scenario,
        render_run_report,
        run_scenario,
    )

    targets = args.target or ["service", "http"]
    if args.scenarios:
        scenarios = [get_scenario(name) for name in args.scenarios]
    else:
        scenarios = list(builtin_scenarios())
    print(f"running {len(scenarios)} scenario(s) against "
          f"{len(targets)} target(s): {', '.join(targets)}")
    failures: list[str] = []
    for scenario in scenarios:
        prepared = prepare_scenario(scenario)
        for kind in targets:
            report = run_scenario(
                prepared, kind,
                workers=args.workers, time_scale=args.time_scale,
            )
            print()
            print(render_run_report(report))
            for action in report.actions:
                if action.error is not None:
                    failures.append(
                        f"{scenario.name}@{kind}: action "
                        f"{action.label!r} failed: {action.error}"
                    )
            if report.audit and report.audit["mixed_answers"]:
                failures.append(
                    f"{scenario.name}@{kind}: "
                    f"{report.audit['mixed_answers']} mixed-version answers"
                )
            if not args.no_bench:
                append_scenario_entry(args.bench_json, report)
    if not args.no_bench:
        print(f"\nappended {len(scenarios) * len(targets)} "
              f"scenario entries to {args.bench_json}")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        Baseline,
        ModuleIndex,
        all_checkers,
        default_baseline_path,
        run_analysis,
    )

    checkers = all_checkers()
    if args.select:
        wanted = {
            part.strip()
            for selector in args.select
            for part in selector.split(",")
            if part.strip()
        }
        known = {checker.id for checker in checkers}
        unknown = sorted(wanted - known)
        if unknown:
            print(f"error: unknown checker id(s): {', '.join(unknown)} "
                  f"(known: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
        checkers = [checker for checker in checkers if checker.id in wanted]
    baseline = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline = Baseline.load(args.baseline)
        elif default_baseline_path().exists():
            baseline = Baseline.load(default_baseline_path())
    report = run_analysis(
        ModuleIndex.scan(args.path), checkers, baseline=baseline
    )
    if args.write_baseline:
        Baseline.from_findings(report.findings).save(args.write_baseline)
        print(f"wrote {len(report.findings)} finding(s) as "
              f"{args.write_baseline}")
    if args.bench_json:
        from repro.workloads.report import merge_bench_entry

        payload = report.as_dict()
        payload.pop("findings")  # the trajectory tracks counts, not sites
        merge_bench_entry(args.bench_json, "static_analysis", payload)
    if args.format == "json":
        print(json.dumps(report.as_dict(), ensure_ascii=False, indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal

    from repro.serving import build_cluster
    from repro.serving.server import start_server

    taxonomy = Taxonomy.load(args.taxonomy)
    service = build_cluster(
        taxonomy, shards=args.shards, replicas=args.replicas
    )
    server = start_server(
        service,
        host=args.host,
        port=args.port,
        admin_token=args.admin_token,
    )
    ready_path = Path(args.ready_file) if args.ready_file else None

    def handle_signal(signum, frame) -> None:
        # exit through the normal path: wait() returns, the finally
        # block closes the server and unlinks the ready-file — so a
        # supervisor's SIGTERM never leaves a stale readiness marker
        # for the next process to trip over
        print(f"received {signal.Signals(signum).name}, shutting down")
        server.shutdown_soon()

    restored = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            restored[signum] = signal.signal(signum, handle_signal)
        except (ValueError, OSError):  # non-main thread or unsupported
            pass
    try:
        stats = taxonomy.stats()
        print(f"serving {args.taxonomy} "
              f"({stats.n_isa_total} isA relations) at {server.url}")
        print(f"shards={args.shards} replicas={args.replicas} "
              f"version={service.version_id}")
        if args.admin_token:
            print("admin API armed: POST /admin/swap, /admin/apply-delta, "
                  "/admin/shutdown")
        if ready_path is not None:
            # written only now — the socket is bound and the serve loop
            # is accepting, so a reader acting on this file cannot race
            # the server coming up.  pid + port as JSON lets the reader
            # reject a stale file left by a crashed predecessor (the
            # pid is dead, or alive but a different process).
            host, port = server.server_address[:2]
            ready_path.write_text(
                json.dumps({"pid": os.getpid(), "host": host, "port": port})
                + "\n",
                encoding="utf-8",
            )
        server.wait()
        print("server stopped")
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
        if ready_path is not None:
            try:  # clean shutdown removes the readiness marker
                ready_path.unlink()
            except OSError:
                pass
        for signum, handler in restored.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cn-probase",
        description="CN-Probase taxonomy construction (ICDE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="synthesize an encyclopedia dump"
    )
    generate.add_argument("--entities", type=int, default=2000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build", help="build a taxonomy from a dump")
    build.add_argument("--dump", required=True)
    build.add_argument("--out", required=True)
    build.add_argument("--no-abstract", action="store_true",
                       help="skip the (slow) neural generation source")
    build.add_argument("--no-incompatible", action="store_true")
    build.add_argument("--no-ner", action="store_true")
    build.add_argument("--no-syntax", action="store_true")
    build.add_argument("--neural-epochs", type=int, default=6)
    build.add_argument("--max-generation-pages", type=int, default=None)
    build.add_argument("--disable-stage", action="append", metavar="NAME",
                       help="disable a registered stage by name (repeatable); "
                            "see `cn-probase stages` for the names")
    build.add_argument("--workers", type=int, default=1, metavar="N",
                       help="workers for independent generation sources and "
                            "sharded verifiers; output is byte-identical to "
                            "--workers 1 (default: 1)")
    build.add_argument("--backend", default="threads",
                       choices=["serial", "threads", "processes"],
                       help="executor for those workers: processes reaches "
                            "real cores (corpus segmentation, source waves "
                            "and verifier shards run in a process pool); "
                            "output is byte-identical on every backend "
                            "(default: threads)")
    build.add_argument("--parallel-floor", type=int, default=None,
                       metavar="W",
                       help="minimum estimated work items before a pool is "
                            "spun up; 0 forces parallel execution, unset "
                            "uses the backend's default floor")
    build.add_argument("--no-resource-cache", action="store_true",
                       help="always re-derive lexicon/corpus/PMI instead of "
                            "reusing them when the dump fingerprint matches "
                            "a previous build")
    build.add_argument("--incremental", action="store_true",
                       help="diff the dump against --previous-dump, rebuild "
                            "and write a <out>.delta.jsonl taxonomy delta "
                            "for /admin/apply-delta; output is byte-"
                            "identical to a full build (a cold CLI process "
                            "pays full-build cost — the resource/replay "
                            "fast paths need the warm in-process caches a "
                            "nightly service keeps)")
    build.add_argument("--previous", metavar="TAXONOMY", default=None,
                       help="the previously built taxonomy JSONL "
                            "(required with --incremental)")
    build.add_argument("--previous-dump", metavar="DUMP", default=None,
                       help="the dump the previous taxonomy was built from "
                            "(required with --incremental)")
    build.set_defaults(func=_cmd_build)

    diff = sub.add_parser(
        "diff", help="page-level diff between two encyclopedia dumps"
    )
    diff.add_argument("old_dump", help="the older dump JSONL")
    diff.add_argument("new_dump", help="the newer dump JSONL")
    diff.add_argument("--json", metavar="PATH", default=None,
                      help="also write the full diff as JSON to PATH")
    diff.set_defaults(func=_cmd_diff)

    stages = sub.add_parser(
        "stages", help="list the registered pipeline stages"
    )
    stages.add_argument("--trace", metavar="PATH", default=None,
                        help="print the per-stage seconds/workers/cache "
                             "columns from a build's .trace.json sidecar")
    stages.set_defaults(func=_cmd_stages)

    stats = sub.add_parser("stats", help="print taxonomy statistics")
    stats.add_argument("--taxonomy", required=True)
    stats.set_defaults(func=_cmd_stats)

    serve = sub.add_parser(
        "serve", help="serve a taxonomy over HTTP (sharded, hot-swappable)"
    )
    serve.add_argument("taxonomy", help="taxonomy JSONL file to publish")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="key-hashed shards for the read indexes; "
                            "answers are identical at any shard count "
                            "(default: 1)")
    serve.add_argument("--replicas", type=int, default=1, metavar="R",
                       help="read replicas per shard with failover "
                            "routing (default: 1)")
    serve.add_argument("--port", type=int, default=8321, metavar="P",
                       help="listen port; 0 picks a free one "
                            "(default: 8321)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--admin-token", default=None, metavar="TOKEN",
                       help="bearer token arming POST /admin/swap and "
                            "/admin/shutdown (disabled when omitted)")
    serve.add_argument("--ready-file", default=None, metavar="PATH",
                       help="write {\"pid\", \"host\", \"port\"} JSON here "
                            "once the socket is accepting, and remove it on "
                            "clean shutdown; readers should validate the pid "
                            "so a stale file from a crashed server is not "
                            "mistaken for readiness")
    serve.set_defaults(func=_cmd_serve)

    squash = sub.add_parser(
        "delta-squash",
        help="compose an ordered chain of taxonomy deltas into one",
        description="Squash N nightly .delta.jsonl files (oldest first) "
                    "into one equivalent delta: add-then-remove cancels, "
                    "change-of-change collapses to (first old, last new). "
                    "Applying the composed delta is byte-identical to "
                    "applying the chain one by one — one "
                    "/admin/apply-delta instead of N.",
    )
    squash.add_argument("deltas", nargs="+", metavar="DELTA",
                        help="delta JSONL files, in chain order "
                             "(oldest first)")
    squash.add_argument("-o", "--out", required=True,
                        help="where to write the composed delta JSONL")
    squash.set_defaults(func=_cmd_delta_squash)

    workload = sub.add_parser(
        "workload",
        help="named workload scenarios: list, compile, replay",
        description="The repro.workloads harness from the shell: list the "
                    "built-in scenarios, compile one to a deterministic "
                    "timestamped schedule (same scenario + seed -> "
                    "byte-identical JSONL), or replay scenarios open-loop "
                    "against serving targets with p50/p95/p99, schedule "
                    "lateness and a mixed-version audit for "
                    "publish-under-load.",
    )
    workload_sub = workload.add_subparsers(dest="workload_cmd", required=True)

    workload_list = workload_sub.add_parser(
        "list", help="list the built-in scenarios"
    )
    workload_list.set_defaults(func=_cmd_workload_list)

    workload_compile = workload_sub.add_parser(
        "compile", help="compile a scenario to a schedule JSONL"
    )
    workload_compile.add_argument("scenario", help="scenario name")
    workload_compile.add_argument("--out", required=True,
                                  help="where to write the schedule JSONL")
    workload_compile.add_argument("--seed", type=int, default=None,
                                  help="override the scenario's seed")
    workload_compile.set_defaults(func=_cmd_workload_compile)

    workload_run = workload_sub.add_parser(
        "run", help="replay scenarios against serving targets"
    )
    workload_run.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help="scenario names (default: every built-in scenario)")
    workload_run.add_argument(
        "--target", action="append", default=None,
        choices=["service", "sharded", "router", "http"],
        help="serving target kind (repeatable; default: service and "
             "http — the in-process facade and a live cn-probase serve "
             "subprocess)")
    workload_run.add_argument("--workers", type=int, default=8,
                              help="dispatcher worker threads (default: 8)")
    workload_run.add_argument(
        "--time-scale", type=float, default=1.0, metavar="X",
        help="compress the schedule X-fold (same request sequence, "
             "shorter wall clock; default: 1.0)")
    workload_run.add_argument(
        "--bench-json", default="benchmarks/out/BENCH_parallel.json",
        metavar="PATH",
        help="perf trajectory JSON to append per-scenario entries to "
             "(default: benchmarks/out/BENCH_parallel.json)")
    workload_run.add_argument("--no-bench", action="store_true",
                              help="do not write the perf trajectory")
    workload_run.set_defaults(func=_cmd_workload_run)

    lint = sub.add_parser(
        "lint",
        help="run the repro.analysis invariant checkers over the package",
        description="Static analysis of the installed repro package: "
                    "determinism (no ambient entropy), lock-discipline "
                    "(guarded state stays guarded), pickle-safety "
                    "(nothing unpicklable crosses a process pool), "
                    "error-taxonomy (public paths raise ReproError) and "
                    "deprecation (internal code stays off compat shims). "
                    "Exit 0 when clean, 1 on new findings, 2 on driver "
                    "errors (bad baseline, unknown checker).",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="text = one finding per line + summary; json = the full "
             "AnalysisReport (default: text)")
    lint.add_argument(
        "--select", action="append", default=None, metavar="IDS",
        help="run only these checker ids (repeatable or comma-"
             "separated, e.g. lock-discipline,determinism)")
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON of grandfathered finding keys (default: "
             "the shipped src/repro/analysis/baseline.json)")
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore every baseline, report grandfathered debt too")
    lint.add_argument(
        "--path", default=None, metavar="DIR",
        help="analyze this source tree instead of the installed repro "
             "package (fixture trees, synthetic-violation checks)")
    lint.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the new findings' keys as a baseline file "
             "(grandfathering them for future runs)")
    lint.add_argument(
        "--bench-json", default=None, metavar="PATH",
        help="merge the counts into this perf-trajectory JSON as the "
             "'static_analysis' section")
    lint.set_defaults(func=_cmd_lint)

    obs = sub.add_parser(
        "obs",
        help="telemetry for a live server: metrics dump, event tail",
        description="Read the unified telemetry of a running "
                    "`cn-probase serve` instance.",
    )
    obs_sub = obs.add_subparsers(dest="obs_cmd", required=True)

    obs_dump = obs_sub.add_parser(
        "dump", help="print /metrics (and optionally recent trace spans)"
    )
    obs_dump.add_argument("--url", required=True,
                          help="server base URL, e.g. http://127.0.0.1:8080")
    obs_dump.add_argument("--admin-token", default=None,
                          help="bearer token for the /admin endpoints")
    obs_dump.add_argument(
        "--format", choices=["json", "text"], default="json",
        help="json = the /metrics payload; text = Prometheus exposition "
             "(default: json)")
    obs_dump.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="also print the N most recent trace spans "
             "(needs --admin-token)")
    obs_dump.set_defaults(func=_cmd_obs_dump)

    obs_tail = obs_sub.add_parser(
        "tail", help="follow the structured event log as JSON lines"
    )
    obs_tail.add_argument("--url", required=True,
                          help="server base URL, e.g. http://127.0.0.1:8080")
    obs_tail.add_argument("--admin-token", required=True,
                          help="bearer token for /admin/events")
    obs_tail.add_argument(
        "--since", type=int, default=0, metavar="SEQ",
        help="start after this event sequence number (default: 0)")
    obs_tail.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="poll interval in seconds (default: 1.0)")
    obs_tail.add_argument("--once", action="store_true",
                          help="poll once and exit instead of following")
    obs_tail.set_defaults(func=_cmd_obs_tail)

    query = sub.add_parser("query", help="call one of the three APIs")
    query.add_argument("--taxonomy", required=True)
    query.add_argument(
        "api", choices=["men2ent", "getConcept", "getEntity"]
    )
    query.add_argument("argument")
    query.set_defaults(func=_cmd_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
