"""The structured event log.

Every *state change* in the serving layer -- publishes, delta
conflicts and merges, resyncs, heals, swaps, replica health
transitions -- lands here as one append-only JSON-shaped record with a
monotonic sequence number.  The router's ``last_publish_report`` /
``last_resync_report`` lists survive as thin compatibility views over
the same records; new consumers should read the log (`cn-probase obs
tail`, ``GET /admin/events``).

The ring is bounded: eviction is strictly oldest-first, and within the
retained window sequence numbers are contiguous by construction (one
lock, one counter, one append).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import TelemetryError

from . import clock

__all__ = ["EventLog"]


class EventLog:
    """Bounded append-only log of structured event records."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=capacity)
        self._seq = 0

    def emit(self, kind: str, **fields) -> dict:
        """Append one event; returns a copy of the stored record."""
        for reserved in ("seq", "ts", "kind"):
            if reserved in fields:
                raise TelemetryError(f"field {reserved!r} is reserved")
        with self._lock:
            self._seq += 1
            record = {"seq": self._seq, "ts": clock.wall_time(),
                      "kind": kind, **fields}
            self._records.append(record)
        return dict(record)

    def records(
        self,
        *,
        since: int = 0,
        kind: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Retained records oldest-first, as copies.

        *since* keeps records with ``seq > since`` (the cursor shape
        ``obs tail`` polls with); *kind* filters by event kind; *limit*
        keeps the newest N after filtering.
        """
        with self._lock:
            out = [dict(r) for r in self._records]
        if since:
            out = [r for r in out if r["seq"] > since]
        if kind is not None:
            out = [r for r in out if r["kind"] == kind]
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
