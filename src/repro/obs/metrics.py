"""One metrics registry for the whole system.

`MetricsRegistry` holds named counter / gauge / summary families (a
summary is a histogram-style metric reporting count / sum / max plus
reservoir-sampled quantiles, matching what `APILatency` already
exposes).  Families are created get-or-create by name, children
get-or-create by label set, and every read goes through one
`snapshot()` taken under the registry lock -- so a concurrent scraper
can never observe a torn view of related counters.

Besides directly-owned families, the registry accepts *collectors*:
pre-existing ledger objects (`ServiceMetrics`, `RouterStats`, ...) that
already keep their own locked counters.  A collector registers once
with a component name and a ``metric_samples()`` method; at snapshot
time the registry calls it and merges the result in, stamping each
sample with a ``component`` label.  Collectors are held by weakref so
registering a short-lived store or router never pins it alive, and
live collectors sharing a component name are disambiguated
deterministically (``store``, ``store#2``, ...) in registration order.

The same snapshot feeds both renderings -- ``as_dict()`` (the JSON
``/metrics`` payload) and ``render_text()`` (the Prometheus-style
exposition) -- so the two can never disagree about which metrics
exist.
"""

from __future__ import annotations

import re
import threading
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Iterable

COUNTER = "counter"
GAUGE = "gauge"
SUMMARY = "summary"

#: Quantiles every summary reports, matching ``APILatency``.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

#: Bounded per-child reservoir for summary quantiles.
RESERVOIR_SIZE = 2048

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelPairs = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelPairs:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One scalar sample of a counter or gauge family."""

    labels: LabelPairs
    value: float

    def as_dict(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}


@dataclass(frozen=True)
class SummarySample:
    """One labelled summary: count / sum / max plus quantiles."""

    labels: LabelPairs
    count: int
    sum: float
    max: float
    quantiles: tuple[tuple[float, float], ...]

    def as_dict(self) -> dict:
        out = {
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
        }
        for q, value in self.quantiles:
            out[f"p{int(q * 100)}"] = value
        return out


@dataclass(frozen=True)
class MetricSnapshot:
    """A frozen view of one metric family at snapshot time."""

    name: str
    kind: str
    help: str
    samples: tuple[Sample | SummarySample, ...]

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [s.as_dict() for s in self.samples],
        }


class _Counter:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _Gauge:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _Summary:
    __slots__ = ("_lock", "_count", "_sum", "_max", "_reservoir")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._reservoir: deque[float] = deque(maxlen=RESERVOIR_SIZE)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            self._reservoir.append(value)

    # lint: allow[lock-discipline] caller (the registry snapshot) holds the lock
    def _snapshot(self, labels: LabelPairs) -> SummarySample:
        # Caller holds the lock.
        return SummarySample(
            labels=labels,
            count=self._count,
            sum=self._sum,
            max=self._max,
            quantiles=summary_quantiles(self._reservoir),
        )


def summary_quantiles(
    values: Iterable[float],
    quantiles: tuple[float, ...] = SUMMARY_QUANTILES,
) -> tuple[tuple[float, float], ...]:
    """Empirical quantiles of *values* as ``((q, value), ...)``.

    Sorts a copy, so a live reservoir can be passed directly; an empty
    input yields value 0.0 at every quantile.  Monotone in ``q`` by
    construction.
    """
    ordered = sorted(values)
    if not ordered:
        return tuple((q, 0.0) for q in quantiles)
    last = len(ordered) - 1
    return tuple(
        (q, ordered[min(last, int(q * len(ordered)))]) for q in quantiles
    )


_CHILD_TYPES = {COUNTER: _Counter, GAUGE: _Gauge, SUMMARY: _Summary}


class MetricFamily:
    """A named metric with one child per label set."""

    def __init__(self, name: str, kind: str, help: str, lock: threading.RLock):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        if kind not in _CHILD_TYPES:
            raise ValueError(f"unknown metric kind: {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self._lock = lock
        self._children: dict[LabelPairs, _Counter | _Gauge | _Summary] = {}

    def labels(self, **labels: str):
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _CHILD_TYPES[self.kind](self._lock)
                self._children[key] = child
            return child

    # Label-less shortcuts so `registry.counter("x").inc()` reads well.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    # lint: allow[lock-discipline] caller (the registry snapshot) holds the lock
    def _snapshot(self) -> MetricSnapshot:
        # Caller holds the lock.
        samples: list[Sample | SummarySample] = []
        for key, child in self._children.items():
            if isinstance(child, _Summary):
                samples.append(child._snapshot(key))
            else:
                samples.append(Sample(labels=key, value=child.value))
        return MetricSnapshot(
            name=self.name, kind=self.kind, help=self.help,
            samples=tuple(samples),
        )


class _Collector:
    __slots__ = ("component", "ref", "method")

    def __init__(self, component: str, owner: object, method: str):
        self.component = component
        self.ref = weakref.ref(owner)
        self.method = method


class MetricsRegistry:
    """Thread-safe, process-local registry of metric families."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[_Collector] = []

    # -- direct families ---------------------------------------------------

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, COUNTER, help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, GAUGE, help)

    def summary(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, SUMMARY, help)

    def _family(self, name: str, kind: str, help: str) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, self._lock)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind},"
                    f" not {kind}"
                )
            return family

    # -- collectors --------------------------------------------------------

    def register_collector(
        self, component: str, owner: object, method: str = "metric_samples"
    ) -> None:
        """Merge ``owner.metric_samples()`` into every future snapshot.

        *owner* is held by weakref; a dead collector silently drops out
        of the next snapshot.  Each emitted sample gains a
        ``component`` label; when several live collectors share
        *component* the later ones get ``#2``, ``#3``, ... suffixes in
        registration order.
        """
        if not getattr(owner, method, None):
            raise TypeError(
                f"collector for {component!r} has no {method}() method"
            )
        with self._lock:
            self._collectors.append(_Collector(component, owner, method))

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> tuple[MetricSnapshot, ...]:
        """A consistent view of every family, direct and collected."""
        with self._lock:
            merged: dict[str, MetricSnapshot] = {
                name: family._snapshot()
                for name, family in sorted(self._families.items())
            }
            live: list[tuple[str, object, str]] = []
            seen_components: dict[str, int] = {}
            kept: list[_Collector] = []
            for collector in self._collectors:
                owner = collector.ref()
                if owner is None:
                    continue  # prune the dead
                kept.append(collector)
                n = seen_components.get(collector.component, 0) + 1
                seen_components[collector.component] = n
                label = collector.component if n == 1 else (
                    f"{collector.component}#{n}"
                )
                live.append((label, owner, collector.method))
            self._collectors = kept
        # Collector calls happen outside our lock: each ledger takes its
        # own lock and must never wait on ours (lock-order safety).
        for label, owner, method in live:
            for snap in getattr(owner, method)():
                relabelled = MetricSnapshot(
                    name=snap.name, kind=snap.kind, help=snap.help,
                    samples=tuple(
                        _with_component(sample, label)
                        for sample in snap.samples
                    ),
                )
                existing = merged.get(snap.name)
                if existing is None:
                    merged[snap.name] = relabelled
                else:
                    merged[snap.name] = MetricSnapshot(
                        name=snap.name, kind=existing.kind,
                        help=existing.help or snap.help,
                        samples=existing.samples + relabelled.samples,
                    )
        return tuple(merged[name] for name in sorted(merged))

    def as_dict(self) -> dict:
        """JSON-shaped ``{name: {type, help, samples}}`` view."""
        return {snap.name: snap.as_dict() for snap in self.snapshot()}

    def render_text(self) -> str:
        """Prometheus-style text exposition of the current snapshot."""
        return render_text(self.snapshot())


def _with_component(sample, component: str):
    labels = (("component", component),) + tuple(
        pair for pair in sample.labels if pair[0] != "component"
    )
    labels = tuple(sorted(labels))
    if isinstance(sample, SummarySample):
        return SummarySample(
            labels=labels, count=sample.count, sum=sample.sum,
            max=sample.max, quantiles=sample.quantiles,
        )
    return Sample(labels=labels, value=sample.value)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_labels(labels: LabelPairs, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    return repr(float(value))


def render_text(snapshots: Iterable[MetricSnapshot]) -> str:
    """Render *snapshots* in the Prometheus text exposition format.

    Summaries expand to ``name{quantile=...}`` series plus
    ``name_sum`` / ``name_count`` / ``name_max``.
    """
    lines: list[str] = []
    for snap in snapshots:
        if snap.help:
            lines.append(f"# HELP {snap.name} {_escape(snap.help)}")
        lines.append(f"# TYPE {snap.name} {snap.kind}")
        for sample in snap.samples:
            if isinstance(sample, SummarySample):
                for q, value in sample.quantiles:
                    qlabel = (("quantile", format(q, "g")),)
                    lines.append(
                        f"{snap.name}{_format_labels(sample.labels, qlabel)}"
                        f" {_format_value(value)}"
                    )
                labels = _format_labels(sample.labels)
                lines.append(
                    f"{snap.name}_sum{labels} {_format_value(sample.sum)}"
                )
                lines.append(f"{snap.name}_count{labels} {sample.count}")
                lines.append(
                    f"{snap.name}_max{labels} {_format_value(sample.max)}"
                )
            else:
                lines.append(
                    f"{snap.name}{_format_labels(sample.labels)}"
                    f" {_format_value(sample.value)}"
                )
    return "\n".join(lines) + "\n"
