"""`repro.obs` -- the observability spine.

One `TelemetryHub` bundles the three surfaces every component shares:

- :class:`~repro.obs.metrics.MetricsRegistry` -- named counters /
  gauges / summaries, absorbing every pre-existing ad-hoc ledger
  (`ServiceMetrics`, `RouterStats`, store swap stats, client
  retry/backoff counts, build stage timings) via weakref collectors;
- :class:`~repro.obs.trace.TraceLog` -- bounded ring of per-request
  spans, correlated by the ``X-Trace-Id`` minted at the client and
  propagated server -> router -> shard;
- :class:`~repro.obs.events.EventLog` -- append-only structured
  records of every serving-layer state change.

A process-global default hub (`get_hub`) keeps wiring zero-config;
components capture their hub at construction, so tests and the
workload runner isolate themselves with `fresh_hub()`.
"""

from __future__ import annotations

from contextlib import contextmanager

from .clock import elapsed, wall_time
from .events import EventLog
from .metrics import (
    COUNTER,
    GAUGE,
    SUMMARY,
    MetricFamily,
    MetricSnapshot,
    MetricsRegistry,
    Sample,
    SummarySample,
    render_text,
    summary_quantiles,
)
from .trace import (
    TRACE_HEADER,
    Span,
    TraceIdSource,
    TraceLog,
    current_trace_id,
    trace_context,
)

__all__ = [
    "COUNTER", "GAUGE", "SUMMARY",
    "MetricFamily", "MetricSnapshot", "MetricsRegistry",
    "Sample", "SummarySample", "render_text", "summary_quantiles",
    "TRACE_HEADER", "Span", "TraceIdSource", "TraceLog",
    "current_trace_id", "trace_context",
    "EventLog", "TelemetryHub",
    "get_hub", "set_hub", "fresh_hub",
    "per_hop_breakdown", "elapsed", "wall_time",
]


class TelemetryHub:
    """Registry + trace ring + event log, bundled per process (or test)."""

    def __init__(self, *, trace_capacity: int = 4096,
                 event_capacity: int = 4096):
        self.registry = MetricsRegistry()
        self.traces = TraceLog(trace_capacity)
        self.events = EventLog(event_capacity)

    # Convenience pass-throughs so call sites read `hub.emit(...)`.
    def record_span(self, *args, **kwargs) -> Span:
        return self.traces.record(*args, **kwargs)

    def emit(self, kind: str, **fields) -> dict:
        return self.events.emit(kind, **fields)

    def record_stage_trace(
        self, trace, *, mode: str = "full", backend: str = "serial"
    ) -> None:
        """Absorb a build's ``StageTrace`` into the registry.

        Duck-typed on purpose: ``trace.records`` yields objects with
        ``name`` / ``kind`` / ``seconds`` / ``count`` / ``ran``, and
        ``trace.total_seconds`` is the wall time of the whole build --
        exactly the `repro.core.stages.StageTrace` shape, without
        importing the build layer from here.  *backend* labels the
        end-to-end ``build_seconds`` summary so perf trajectories can
        separate thread builds from process builds.
        """
        stage_seconds = self.registry.gauge(
            "build_stage_seconds", "Seconds spent in each build stage"
        )
        stage_items = self.registry.gauge(
            "build_stage_items", "Items processed by each build stage"
        )
        for record in trace.records:
            if not getattr(record, "ran", True):
                continue
            labels = {"stage": record.name, "kind": record.kind}
            stage_seconds.labels(**labels).set(record.seconds)
            stage_items.labels(**labels).set(record.count)
        self.registry.counter(
            "builds_total", "Completed taxonomy builds"
        ).labels(mode=mode).inc()
        self.registry.summary(
            "build_seconds", "End-to-end build wall time"
        ).labels(mode=mode, backend=backend).observe(trace.total_seconds)


_default_hub = TelemetryHub()


def get_hub() -> TelemetryHub:
    """The process-global default hub."""
    return _default_hub


def set_hub(hub: TelemetryHub) -> TelemetryHub:
    """Swap the default hub; returns the previous one."""
    global _default_hub
    previous = _default_hub
    _default_hub = hub
    return previous


@contextmanager
def fresh_hub(**kwargs):
    """A scoped, isolated hub -- components built inside see only it."""
    hub = TelemetryHub(**kwargs)
    previous = set_hub(hub)
    try:
        yield hub
    finally:
        set_hub(previous)


def _span_field(span, name):
    if isinstance(span, dict):
        return span.get(name)
    return getattr(span, name, None)


def per_hop_breakdown(spans) -> dict:
    """Aggregate spans into per-component latency quantiles.

    Groups spans by trace id, sums seconds per component within each
    trace (a batch fanning out to several shards counts once, as the
    request experienced it), and reports count / p50 / p95 / p99 /
    mean seconds per component.  When a trace carries both a client
    and a server span, the difference lands as a derived ``wire`` hop
    -- the cost of the HTTP stack itself.  Accepts `Span` objects or
    their ``as_dict()`` form (the ``/admin/traces`` payload).
    """
    per_trace: dict[str, dict[str, float]] = {}
    for span in spans:
        trace_id = _span_field(span, "trace_id")
        component = _span_field(span, "component")
        seconds = _span_field(span, "seconds")
        if not trace_id or not component or seconds is None:
            continue
        hops = per_trace.setdefault(trace_id, {})
        hops[component] = hops.get(component, 0.0) + float(seconds)
    by_component: dict[str, list[float]] = {}
    for hops in per_trace.values():
        client = hops.get("client")
        server = hops.get("server")
        if client is not None and server is not None:
            hops = {**hops, "wire": max(0.0, client - server)}
        for component, seconds in hops.items():
            by_component.setdefault(component, []).append(seconds)
    out: dict[str, dict] = {}
    for component in sorted(by_component):
        values = by_component[component]
        quantiles = summary_quantiles(values)
        entry = {"count": len(values),
                 "mean_s": sum(values) / len(values)}
        for q, value in quantiles:
            entry[f"p{int(q * 100)}_s"] = value
        out[component] = entry
    return out
