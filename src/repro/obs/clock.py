"""The single sanctioned clock for :mod:`repro.obs`.

Every timestamp and duration in the telemetry subsystem flows through
these two functions.  The determinism lint
(`tests/workloads/test_determinism_lint.py`) forbids ``time`` /
``datetime`` imports anywhere else in the package, so tests can patch
wall time or elapsed time in exactly one place and trace/event records
stay reproducible under a frozen clock.
"""

from __future__ import annotations

import time

__all__ = ["wall_time", "elapsed"]

# Wall-clock seconds since the epoch -- stamps event/span records.
wall_time = time.time

# Monotonic high-resolution seconds -- measures durations.
elapsed = time.perf_counter
