"""End-to-end request tracing.

A trace id is minted once per sampled request -- by `TaxonomyClient`
or at the server front door -- and rides the ``X-Trace-Id`` header
across the wire.  Inside a process it propagates through a
`contextvars.ContextVar`, so thread pools and nested calls see the
active id without any plumbing through call signatures.  Each layer
that touches the request records a `Span` (component, operation,
duration, outcome, replica/shard identity, taxonomy version +
content-hash) into a bounded `TraceLog` ring with monotonic sequence
numbers.

Trace ids are minted without RNG or clock access (`TraceIdSource` is a
pair of monotonic counters), so traced runs stay byte-reproducible
under the workload harness's determinism lint.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, asdict

from . import clock

__all__ = [
    "TRACE_HEADER", "current_trace_id", "trace_context",
    "TraceIdSource", "Span", "TraceLog",
]

#: Wire header carrying the trace id between client and server.
TRACE_HEADER = "X-Trace-Id"

_current: ContextVar[str | None] = ContextVar(
    "repro_obs_trace_id", default=None
)


def current_trace_id() -> str | None:
    """The trace id of the in-flight request, or None when untraced."""
    return _current.get()


@contextmanager
def trace_context(trace_id: str | None):
    """Bind *trace_id* as the active trace for the enclosed block."""
    token = _current.set(trace_id)
    try:
        yield trace_id
    finally:
        _current.reset(token)


_SOURCE_IDS = itertools.count(1)


class TraceIdSource:
    """Mints process-unique trace ids from two monotonic counters.

    No randomness, no clock: ids look like ``t3-000017`` (source
    number, then a per-source counter), which is all the uniqueness a
    process-local trace ring needs while staying reproducible run to
    run.
    """

    def __init__(self, prefix: str = "t"):
        self._prefix = f"{prefix}{next(_SOURCE_IDS)}"
        self._lock = threading.Lock()
        self._n = 0

    def mint(self) -> str:
        with self._lock:
            self._n += 1
            n = self._n
        return f"{self._prefix}-{n:06d}"


@dataclass(frozen=True)
class Span:
    """One component's slice of one traced request."""

    seq: int
    ts: float
    trace_id: str
    component: str
    operation: str
    seconds: float
    outcome: str = "ok"
    shard: int | None = None
    replica: int | None = None
    version: str | None = None
    content_hash: str | None = None

    def as_dict(self) -> dict:
        return asdict(self)


class TraceLog:
    """Bounded ring of spans; oldest-first eviction, monotonic seq."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._seq = 0

    def record(
        self,
        trace_id: str,
        component: str,
        operation: str,
        seconds: float,
        *,
        outcome: str = "ok",
        shard: int | None = None,
        replica: int | None = None,
        version: str | None = None,
        content_hash: str | None = None,
    ) -> Span:
        with self._lock:
            self._seq += 1
            span = Span(
                seq=self._seq,
                ts=clock.wall_time(),
                trace_id=trace_id,
                component=component,
                operation=operation,
                seconds=seconds,
                outcome=outcome,
                shard=shard,
                replica=replica,
                version=version,
                content_hash=content_hash,
            )
            self._spans.append(span)
            return span

    def spans(
        self, *, trace_id: str | None = None, limit: int | None = None
    ) -> list[Span]:
        """Retained spans oldest-first; *limit* keeps the newest N."""
        with self._lock:
            out = list(self._spans)
        if trace_id is not None:
            out = [span for span in out if span.trace_id == trace_id]
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
