"""The checker framework: parsed-module index, findings, baselines.

Every invariant this reproduction sells — byte-identical schedules from
``(Scenario, seed)``, byte-identical builds at any backend × worker
count, zero mixed-version answers under chaos — is held by a coding
convention (seeded RNGs, ``with self._lock:`` blocks, picklable
payloads, :class:`~repro.errors.ReproError` subclasses).  This module
is the machinery that turns those conventions into machine-checked
rules:

- :class:`ParsedModule` / :class:`ModuleIndex` — every ``*.py`` under
  ``src/repro`` parsed **once** into a shared AST index all checkers
  walk, each module addressed by its package-relative posix path
  (``"serving/router.py"``), never its bare filename — so an unrelated
  ``runner.py`` in a future package can never inherit another module's
  exemption.
- :class:`Checker` — the plug-in protocol: an ``id``, a
  ``description``, and ``check(module) -> findings``.
- :class:`Finding` — one structured violation (path / line / checker
  id / message / enclosing symbol), ordered and JSON-round-trippable.
- suppression, two deliberate flavors:

  * **pragmas** — ``# lint: allow[checker-id] reason`` on (or directly
    above) the offending line acknowledges a *benign* violation in
    place; the reason is mandatory, a bare pragma suppresses nothing
    and is itself reported.
  * **baselines** — a JSON file of grandfathered finding keys (line
    numbers excluded, so unrelated edits don't invalidate it) for debt
    that predates a checker; new violations never match.

:func:`run_analysis` ties it together and feeds both the
``cn-probase lint`` CLI and the ``static_analysis`` section of
``BENCH_parallel.json``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import AnalysisError

#: ``# lint: allow[determinism] reason`` — the in-place acknowledgement
#: of a benign violation.  Several ids may share one pragma
#: (``allow[determinism,lock-discipline]``); the trailing reason is
#: mandatory.
PRAGMA_RE = re.compile(
    r"#\s*lint:\s*allow\[(?P<ids>[a-z0-9_\-, ]+)\]\s*(?P<reason>.*)$"
)

BASELINE_FORMAT_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One structured violation a checker reported.

    Ordering is ``(path, line, checker, message)`` so reports read in
    file order.  :attr:`key` deliberately excludes the line number:
    baselines must survive unrelated edits shifting code around, and
    ``symbol`` (the enclosing class/function qualname) keeps the key
    specific enough that a *new* violation of the same rule elsewhere
    in the file never hides behind a grandfathered one.
    """

    path: str
    line: int
    checker: str
    message: str
    symbol: str = ""

    @property
    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.checker}::{self.path}::{self.symbol}::{self.message}"

    def as_dict(self) -> dict:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Finding":
        try:
            return cls(
                path=str(payload["path"]),
                line=int(payload["line"]),
                checker=str(payload["checker"]),
                message=str(payload["message"]),
                symbol=str(payload.get("symbol", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(
                f"not a finding record: {payload!r} ({exc})"
            ) from exc

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        return f"{where}: [{self.checker}] {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# lint: allow[...]`` comment."""

    checkers: frozenset[str]
    reason: str

    def allows(self, checker_id: str) -> bool:
        return bool(self.reason.strip()) and checker_id in self.checkers


class ParsedModule:
    """One source module, parsed once and shared by every checker."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        #: package-relative posix path — the only way checkers and
        #: exemption tables may address a module (never bare filenames).
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {path}: {exc}") from exc
        self.pragmas: dict[int, Pragma] = {}
        #: pragmas whose mandatory reason is missing — reported, not
        #: honored (a bare ``allow[...]`` must never silence anything)
        self.bare_pragma_lines: list[tuple[int, str]] = []
        for lineno, line in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(line)
            if not match:
                continue
            ids = frozenset(
                part.strip() for part in match.group("ids").split(",")
                if part.strip()
            )
            reason = match.group("reason").strip()
            if reason:
                self.pragmas[lineno] = Pragma(ids, reason)
            else:
                self.bare_pragma_lines.append((lineno, ", ".join(sorted(ids))))

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ParsedModule":
        rel = path.relative_to(root).as_posix()
        return cls(path, rel, path.read_text(encoding="utf-8"))

    def allows(self, checker_id: str, line: int) -> bool:
        """Is *line* covered by a reasoned pragma for *checker_id*?

        The pragma may sit on the offending line itself or on the line
        directly above it (long offending lines rarely have room for a
        trailing comment).
        """
        for candidate in (line, line - 1):
            pragma = self.pragmas.get(candidate)
            if pragma is not None and pragma.allows(checker_id):
                return True
        return False

    def finding(
        self, checker_id: str, node: ast.AST | int, message: str,
        symbol: str = "",
    ) -> Finding:
        line = node if isinstance(node, int) else node.lineno
        return Finding(
            path=self.rel, line=line, checker=checker_id,
            message=message, symbol=symbol,
        )


class ModuleIndex:
    """Every module under one source root, parsed once, checked by all."""

    def __init__(self, root: Path, modules: Sequence[ParsedModule]) -> None:
        self.root = root
        self.modules = list(modules)

    @classmethod
    def scan(cls, root: str | Path | None = None) -> "ModuleIndex":
        """Parse every ``*.py`` under *root* (default: the installed
        :mod:`repro` package itself)."""
        if root is None:
            import repro

            root = Path(repro.__file__).parent
        root = Path(root)
        if not root.is_dir():
            raise AnalysisError(f"not a directory to analyze: {root}")
        modules = [
            ParsedModule.parse(path, root)
            for path in sorted(root.rglob("*.py"))
            if "__pycache__" not in path.parts
        ]
        return cls(root, modules)

    def __len__(self) -> int:
        return len(self.modules)

    def packages(self) -> list[str]:
        """Top-level package names covered by the index ('.' = root)."""
        names = {
            module.rel.split("/", 1)[0] if "/" in module.rel else "."
            for module in self.modules
        }
        return sorted(names)

    def module(self, rel: str) -> ParsedModule:
        for candidate in self.modules:
            if candidate.rel == rel:
                return candidate
        raise AnalysisError(f"no module {rel!r} in the index")


@runtime_checkable
class Checker(Protocol):
    """The plug-in surface: stateless, one module at a time.

    ``id`` names the checker in findings, ``--select``, pragmas and
    baselines; ``description`` is the one-line story ``lint`` prints.
    ``check`` walks one :class:`ParsedModule` and yields findings —
    pragma and baseline suppression belong to :func:`run_analysis`,
    never to individual checkers.
    """

    id: str
    description: str

    def check(self, module: ParsedModule) -> Iterable[Finding]: ...


class Baseline:
    """Grandfathered finding keys loaded from (or saved to) JSON."""

    def __init__(self, entries: Mapping[str, str] | None = None) -> None:
        #: finding key → reason it was grandfathered
        self.entries: dict[str, str] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return finding.key in self.entries

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        source = Path(path)
        if not source.exists():
            raise AnalysisError(f"baseline file not found: {source}")
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise AnalysisError(
                f"baseline {source} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise AnalysisError(f"baseline {source} must be a JSON object")
        version = payload.get("format_version")
        if version != BASELINE_FORMAT_VERSION:
            raise AnalysisError(
                f"baseline {source} has format_version {version!r}, "
                f"this build reads {BASELINE_FORMAT_VERSION}"
            )
        entries: dict[str, str] = {}
        for entry in payload.get("entries", ()):
            if not isinstance(entry, dict) or "key" not in entry:
                raise AnalysisError(
                    f"baseline {source}: entry {entry!r} has no 'key'"
                )
            entries[str(entry["key"])] = str(entry.get("reason", ""))
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], reason: str = "grandfathered"
    ) -> "Baseline":
        return cls({finding.key: reason for finding in findings})

    def save(self, path: str | Path) -> None:
        payload = {
            "format_version": BASELINE_FORMAT_VERSION,
            "entries": [
                {"key": key, "reason": reason}
                for key, reason in sorted(self.entries.items())
            ],
        }
        Path(path).write_text(
            json.dumps(payload, ensure_ascii=False, indent=2) + "\n",
            encoding="utf-8",
        )


@dataclass
class AnalysisReport:
    """Everything one analysis run decided, ready for text or JSON."""

    modules_scanned: int
    checker_ids: tuple[str, ...]
    findings: list[Finding]
    baselined: list[Finding]
    pragma_suppressed: list[Finding]

    def by_checker(self) -> dict[str, dict[str, int]]:
        counts = {
            checker_id: {"found": 0, "baselined": 0, "allowed": 0, "new": 0}
            for checker_id in self.checker_ids
        }
        for finding, bucket in (
            *((f, "new") for f in self.findings),
            *((f, "baselined") for f in self.baselined),
            *((f, "allowed") for f in self.pragma_suppressed),
        ):
            entry = counts.setdefault(
                finding.checker,
                {"found": 0, "baselined": 0, "allowed": 0, "new": 0},
            )
            entry["found"] += 1
            entry[bucket] += 1
        return counts

    def as_dict(self) -> dict:
        return {
            "modules_scanned": self.modules_scanned,
            "findings_total": (
                len(self.findings) + len(self.baselined)
                + len(self.pragma_suppressed)
            ),
            "findings_new": len(self.findings),
            "findings_baselined": len(self.baselined),
            "findings_allowed": len(self.pragma_suppressed),
            "checkers": self.by_checker(),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = ", ".join(
            f"{checker_id}={entry['new']}"
            for checker_id, entry in sorted(self.by_checker().items())
        )
        lines.append(
            f"{len(self.findings)} new finding(s) "
            f"({len(self.baselined)} baselined, "
            f"{len(self.pragma_suppressed)} allowed by pragma) "
            f"over {self.modules_scanned} modules [{summary}]"
        )
        return "\n".join(lines)

    @property
    def ok(self) -> bool:
        return not self.findings


def run_analysis(
    index: ModuleIndex,
    checkers: Sequence[Checker],
    *,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """Run *checkers* over every module in *index*.

    Checker ids must be unique (a pragma or baseline naming a checker
    must name exactly one rule).  A reasoned pragma on the finding's
    line suppresses it as *allowed*; a baseline key match suppresses it
    as *baselined*; a pragma missing its reason is itself a finding.
    """
    seen_ids: set[str] = set()
    for checker in checkers:
        if checker.id in seen_ids:
            raise AnalysisError(f"duplicate checker id {checker.id!r}")
        seen_ids.add(checker.id)
    new: list[Finding] = []
    baselined: list[Finding] = []
    allowed: list[Finding] = []
    for module in index.modules:
        for lineno, ids in module.bare_pragma_lines:
            new.append(module.finding(
                "pragma", lineno,
                f"lint: allow[{ids}] has no reason — every suppression "
                "must say why",
            ))
        for checker in checkers:
            for finding in checker.check(module):
                if module.allows(checker.id, finding.line):
                    allowed.append(finding)
                elif baseline is not None and baseline.matches(finding):
                    baselined.append(finding)
                else:
                    new.append(finding)
    return AnalysisReport(
        modules_scanned=len(index),
        checker_ids=tuple(checker.id for checker in checkers),
        findings=sorted(new),
        baselined=sorted(baselined),
        pragma_suppressed=sorted(allowed),
    )
