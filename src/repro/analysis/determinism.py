"""Determinism checker: no ambient entropy outside sanctioned modules.

The backbone contracts — same ``(Scenario, seed)`` → byte-identical
schedule, same dump → byte-identical taxonomy at any backend × worker
count, deterministic trace/event ids — all die quietly the first time
a module reaches for ambient entropy.  This checker walks every module
and forbids:

- any use of the ``random`` module other than ``random.Random`` /
  ``from random import Random`` (module-level functions share hidden
  global state seeded from the OS),
- ``Random()`` constructed without an explicit seed argument,
- ``time`` / ``datetime`` / ``uuid`` / ``secrets`` imports anywhere
  except the explicitly exempted modules below,
- function-call expressions in default argument values (the classic
  ``def f(now=time.time())`` time-dependent-default trap).

Exemptions are keyed on **package-relative paths**, never bare
filenames — an unrelated ``runner.py`` in a future package must not
silently inherit the workload dispatcher's clock exemption.  Every
entry carries the reason it is allowed to touch the clock; everything
else imports :mod:`repro.obs.clock` (timestamps / durations) or
:func:`repro.workloads.runner.wall_sleep` (sleeping) instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Mapping

from repro.analysis.framework import Finding, ParsedModule

ENTROPY_MODULES = frozenset({"time", "datetime", "uuid", "secrets"})

#: package-relative path → why that module may touch the clock.
CLOCK_EXEMPT: Mapping[str, str] = {
    "workloads/runner.py":
        "the open-loop dispatcher measures real wall time and sleeps "
        "to schedule timestamps (wall_sleep is the sanctioned hook)",
    "obs/clock.py":
        "the one sanctioned timestamp hook every other module imports",
    "core/pipeline.py":
        "stage timing via perf_counter (observability only; stage "
        "scheduling and output stay clock-free)",
    "serving/server.py":
        "wire timeouts and per-request latency on a real socket",
    "serving/client.py":
        "retry backoff sleeps and wire-latency measurement",
    "cli.py":
        "the `obs tail` polling loop sleeps between fetches",
}


class DeterminismChecker:
    """Flag unseeded randomness, clock imports and call-in-default traps.

    *clock_exempt* overrides the shipped exemption table (tests inject
    their own); exemption only covers the entropy-module imports — the
    ``random`` rules and the default-argument trap hold everywhere.
    """

    id = "determinism"
    description = (
        "no unseeded RNGs, no clock/uuid/secrets imports outside the "
        "exemption table, no call expressions in default arguments"
    )

    def __init__(self, clock_exempt: Mapping[str, str] | None = None) -> None:
        self.clock_exempt = dict(
            CLOCK_EXEMPT if clock_exempt is None else clock_exempt
        )

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        exempt = module.rel in self.clock_exempt
        findings: list[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(module.finding(self.id, node, message))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ENTROPY_MODULES and not exempt:
                        flag(node, f"import {alias.name} — only the "
                                   "clock-exempt modules may touch the "
                                   "clock (use repro.obs.clock)")
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in ENTROPY_MODULES and not exempt:
                    flag(node, f"from {node.module} import ... — only the "
                               "clock-exempt modules may touch the clock "
                               "(use repro.obs.clock)")
                if root == "random":
                    for alias in node.names:
                        if alias.name != "Random":
                            flag(node, f"from random import {alias.name} — "
                                       "module-level random functions use "
                                       "hidden global state")
            elif isinstance(node, ast.Attribute):
                if (isinstance(node.value, ast.Name)
                        and node.value.id == "random"
                        and node.attr != "Random"):
                    flag(node, f"random.{node.attr} — unseeded global RNG")
            elif isinstance(node, ast.Call):
                callee = node.func
                name = (callee.id if isinstance(callee, ast.Name)
                        else callee.attr if isinstance(callee, ast.Attribute)
                        else None)
                if name == "Random" and not node.args and not node.keywords:
                    flag(node, "Random() without a seed — OS-entropy seeded")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    for sub in ast.walk(default):
                        if isinstance(sub, ast.Call):
                            flag(default, f"def {node.name}(...): call "
                                          "expression in a default argument "
                                          "is evaluated once at import time")
        return findings
