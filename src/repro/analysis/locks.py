"""Lock-discipline checker: guarded state is guarded everywhere.

The shape of the ``_pick`` rotation race (PR 5) and the pinned-group
publish race (PR 7): a class protects some attribute with
``with self._lock:`` in most methods, then one method reads or mutates
it bare and two threads interleave.  This checker makes that a finding
instead of a review-time catch:

- a class is *lock-holding* when a method assigns
  ``self.X = threading.Lock()`` / ``RLock()``, or uses an attribute
  whose name contains ``lock`` as a context manager (``with
  self._lock:`` — covers injected locks like the registry lock the
  metric children share);
- an attribute path is *guarded* when any method writes it (plain,
  augmented or subscript assignment, or deletion) under one of the
  class's locks;
- every read or write of a guarded path **outside** the lock, in any
  method except ``__init__`` / ``__new__`` / ``__del__`` (construction
  happens-before publication), is flagged — one finding per
  (method, attribute), at the first offending line.

Benign races exist (an atomic published-reference read, a
caller-holds-the-lock helper) — acknowledge them where they live with
``# lint: allow[lock-discipline] reason`` on the offending line, or on
the ``def`` line to cover a whole method whose contract is "caller
holds the lock".  Attribute paths are tracked one and two levels deep
(``self._rr`` and ``self.stats.probes`` both resolve), so ledger
objects mutated through a field are seen.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ParsedModule

#: methods where unguarded access is fine: the object is not published
#: to other threads yet (or is being torn down by the last owner).
CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__del__"})

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


def _lock_factory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    callee = node.func
    name = (callee.id if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute)
            else None)
    return name in _LOCK_FACTORIES


def _self_attr_path(node: ast.AST) -> str | None:
    """``self.a`` → ``"a"``; ``self.a.b`` → ``"a.b"``; else None."""
    if not isinstance(node, ast.Attribute):
        return None
    inner = node.value
    if isinstance(inner, ast.Name) and inner.id == "self":
        return node.attr
    if (isinstance(inner, ast.Attribute)
            and isinstance(inner.value, ast.Name)
            and inner.value.id == "self"):
        return f"{inner.attr}.{node.attr}"
    return None


def _write_target_path(node: ast.AST) -> str | None:
    """The attribute path a store/delete target mutates, if any.

    Direct attribute targets (``self.a = ...``, ``self.a.b += ...``)
    and container mutation through one subscript
    (``self._rr[shard] = ...``, ``del self.reports[:n]``) both count
    as writes to the underlying attribute.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr_path(node)


class _Access:
    __slots__ = ("path", "write", "under_lock", "line", "method")

    def __init__(self, path, write, under_lock, line, method):
        self.path = path
        self.write = write
        self.under_lock = under_lock
        self.line = line
        self.method = method


class _MethodScanner(ast.NodeVisitor):
    """Collect self-attribute accesses in one method, lock-aware."""

    def __init__(self, method_name: str, lock_attrs: set[str]) -> None:
        self.method = method_name
        self.lock_attrs = lock_attrs
        self.depth = 0
        self.accesses: list[_Access] = []
        self._write_paths: set[int] = set()  # node ids already counted

    def _record(self, path: str | None, write: bool, node: ast.AST) -> None:
        if path is None or path.split(".", 1)[0] in self.lock_attrs:
            return
        self.accesses.append(_Access(
            path, write, self.depth > 0, node.lineno, self.method,
        ))
        if "." in path:
            # `self.a.b` (read or written) also *reads* `self.a` — a
            # guarded one-level attribute reached through its fields
            # must still be reached under the lock
            self.accesses.append(_Access(
                path.split(".", 1)[0], False, self.depth > 0,
                node.lineno, self.method,
            ))

    def _locked_item(self, item: ast.withitem) -> bool:
        path = _self_attr_path(item.context_expr)
        return path is not None and path in self.lock_attrs

    def visit_With(self, node: ast.With) -> None:
        locked = any(self._locked_item(item) for item in node.items)
        for item in node.items:
            self.visit(item)
        if locked:
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self.depth -= 1

    visit_AsyncWith = visit_With

    def _visit_write_targets(self, targets) -> None:
        for target in targets:
            path = _write_target_path(target)
            if path is not None:
                self._record(path, True, target)
                self._write_paths.add(id(target))
                if isinstance(target, ast.Subscript):
                    self._write_paths.add(id(target.value))
            self.visit(target)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._visit_write_targets(node.targets)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit_write_targets([node.target])
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._visit_write_targets([node.target])
        if node.value is not None:
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._visit_write_targets(node.targets)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) not in self._write_paths:
            path = _self_attr_path(node)
            if path is not None:
                self._record(path, False, node)
                # the inner `self.a` of an already-recorded `self.a.b`
                # should not double-report as a separate read
                if "." in path:
                    self._write_paths.add(id(node.value))
        self.generic_visit(node)


class LockDisciplineChecker:
    """Flag bare accesses to attributes a class guards with its lock."""

    id = "lock-discipline"
    description = (
        "attributes written under `with self._lock:` anywhere in a "
        "class may not be read or mutated bare elsewhere in it"
    )

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _methods(self, cls: ast.ClassDef):
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt

    def _lock_attrs(self, cls: ast.ClassDef) -> set[str]:
        locks: set[str] = set()
        for method in self._methods(cls):
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _lock_factory_call(
                    node.value
                ):
                    for target in node.targets:
                        path = _self_attr_path(target)
                        if path is not None and "." not in path:
                            locks.add(path)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        path = _self_attr_path(item.context_expr)
                        if path is not None and "lock" in path.lower():
                            locks.add(path)
        return locks

    def _check_class(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> list[Finding]:
        lock_attrs = self._lock_attrs(cls)
        if not lock_attrs:
            return []
        accesses: list[_Access] = []
        method_lines: dict[str, int] = {}
        for method in self._methods(cls):
            method_lines[method.name] = method.lineno
            scanner = _MethodScanner(method.name, lock_attrs)
            for stmt in method.body:
                scanner.visit(stmt)
            accesses.extend(scanner.accesses)
        guarded = {
            access.path for access in accesses
            if access.write and access.under_lock
        }
        if not guarded:
            return []
        lock_name = sorted(lock_attrs)[0]
        findings: list[Finding] = []
        reported: set[tuple[str, str]] = set()
        for access in accesses:
            if (
                access.under_lock
                or access.path not in guarded
                or access.method in CONSTRUCTION_METHODS
            ):
                continue
            # a reasoned pragma on the `def` line acknowledges a whole
            # caller-holds-the-lock method
            def_line = method_lines.get(access.method, 0)
            if def_line and module.allows(self.id, def_line):
                continue
            if (access.method, access.path) in reported:
                continue
            reported.add((access.method, access.path))
            verb = "mutates" if access.write else "reads"
            findings.append(module.finding(
                self.id, access.line,
                f"{cls.name}.{access.method} {verb} self.{access.path} "
                f"outside `with self.{lock_name}:` but the class guards "
                "it there elsewhere",
                symbol=f"{cls.name}.{access.method}.{access.path}",
            ))
        return findings
