"""Pickle-safety checker: nothing unpicklable crosses a process pool.

The ``processes`` build backend ships work to a
:class:`~repro.core.executors.ProcessExecutor` whose spawn mode
pickles every task function and payload.  A lambda, a closure, or a
function defined inside another function pickles fine *by reference*
only if the child can re-import it — which it cannot, so the failure
is a runtime ``PicklingError`` deep inside a pool, on the spawn path
only (fork masks it).  This checker makes the contract static:

- the first argument of any ``.run(...)`` / ``.submit(...)`` call must
  not be a ``lambda`` or the name of a function defined in an
  enclosing function (module-level functions and bound names imported
  at module scope are fine — pickle finds those by qualified name);
- arguments passed to a ``WorkerContext(...)`` construction must not
  be lambdas or nested-def names either — the context is a frozen
  dataclass precisely so its fields survive the trip;
- ``WorkerContext`` itself must stay a frozen dataclass: the class
  definition is checked for a ``@dataclass(frozen=True)`` decorator.

The call-site net is intentionally name-based (any ``.run``/``.submit``
attribute call), which also covers ``concurrent.futures`` pools used
directly.  ``.run`` is a common method name, so false positives are
possible in principle — in this tree every flagged site either is an
executor or deserves the same scrutiny; a reasoned
``# lint: allow[pickle-safety]`` pragma handles exceptions.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ParsedModule

_SUBMIT_METHODS = frozenset({"run", "submit"})


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function's body."""
    nested: set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                walk(child, True)
            elif isinstance(child, ast.Lambda):
                walk(child, True)
            else:
                walk(child, inside_function)

    walk(tree, False)
    return nested


def _is_frozen_dataclass_decorator(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        callee = node.func
        name = (callee.id if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute)
                else None)
        if name != "dataclass":
            return False
        return any(
            kw.arg == "frozen"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
    return False


class PickleSafetyChecker:
    """Flag unpicklable payloads headed for a process boundary."""

    id = "pickle-safety"
    description = (
        "tasks submitted to executors and WorkerContext payloads must "
        "be module-level (picklable by qualified name); WorkerContext "
        "stays a frozen dataclass"
    )

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        nested = _nested_function_names(module.tree)

        def describe(arg: ast.AST) -> str | None:
            if isinstance(arg, ast.Lambda):
                return "a lambda"
            if isinstance(arg, ast.Name) and arg.id in nested:
                return f"nested function {arg.id!r}"
            return None

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                callee = node.func
                if (isinstance(callee, ast.Attribute)
                        and callee.attr in _SUBMIT_METHODS
                        and node.args):
                    what = describe(node.args[0])
                    if what is not None:
                        findings.append(module.finding(
                            self.id, node,
                            f"{what} passed to .{callee.attr}() cannot "
                            "cross a process boundary — spawn-mode "
                            "pickling resolves functions by module-"
                            "level qualified name",
                        ))
                elif (isinstance(callee, ast.Name)
                        and callee.id == "WorkerContext"):
                    args = list(node.args) + [kw.value for kw in node.keywords]
                    for arg in args:
                        what = describe(arg)
                        if what is not None:
                            findings.append(module.finding(
                                self.id, arg,
                                f"{what} stored on WorkerContext — its "
                                "fields are pickled into every pool "
                                "worker",
                            ))
            elif (isinstance(node, ast.ClassDef)
                    and node.name == "WorkerContext"):
                if not any(
                    _is_frozen_dataclass_decorator(d)
                    for d in node.decorator_list
                ):
                    findings.append(module.finding(
                        self.id, node,
                        "WorkerContext must be declared "
                        "@dataclass(frozen=True) — workers treat it as "
                        "an immutable picklable snapshot",
                        symbol="WorkerContext",
                    ))
        return findings
