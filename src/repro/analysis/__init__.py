"""Static analysis: the repo's invariants enforced as code.

Usage — programmatic::

    from repro.analysis import ModuleIndex, all_checkers, run_analysis

    report = run_analysis(ModuleIndex.scan(), all_checkers())
    assert report.ok, report.render_text()

or from the CLI: ``cn-probase lint [--format json] [--select ids]``.

The framework lives in :mod:`repro.analysis.framework`; one module per
checker.  The shipped baseline (``baseline.json`` next to this file)
grandfathers pre-existing debt — see each entry's ``reason``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.deprecation import DeprecationChecker
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.framework import (
    AnalysisReport,
    Baseline,
    Checker,
    Finding,
    ModuleIndex,
    ParsedModule,
    run_analysis,
)
from repro.analysis.locks import LockDisciplineChecker
from repro.analysis.pickling import PickleSafetyChecker
from repro.analysis.taxonomy_errors import ErrorTaxonomyChecker

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Checker",
    "DeprecationChecker",
    "DeterminismChecker",
    "ErrorTaxonomyChecker",
    "Finding",
    "LockDisciplineChecker",
    "ModuleIndex",
    "ParsedModule",
    "PickleSafetyChecker",
    "all_checkers",
    "default_baseline_path",
    "run_analysis",
]


def all_checkers() -> list[Checker]:
    """The five shipped checkers, in report order."""
    return [
        DeterminismChecker(),
        LockDisciplineChecker(),
        PickleSafetyChecker(),
        ErrorTaxonomyChecker(),
        DeprecationChecker(),
    ]


def default_baseline_path() -> Path:
    """The shipped baseline of grandfathered findings."""
    return Path(__file__).with_name("baseline.json")
