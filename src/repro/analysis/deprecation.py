"""Deprecation checker: internal code stays off the compat shims.

PR 3 renamed the serving accessors (``get_concept``/``get_entity`` →
``concept_of``/``entities_of``) and PR 6 replaced ``WorkloadGenerator``
with the declarative ``repro.workloads`` harness; both kept shims so
external callers migrate on their own clock.  The shims exist *for
them* — every internal use is a migration that silently un-happened.
This checker flags:

- any import of ``WorkloadGenerator`` (``import``/``from ... import``)
  and any bare-name reference to it,
- any **call** ``x.get_concept(...)`` / ``x.get_entity(...)`` — calls
  only, so dispatch tables that merely mention the attribute name and
  the shim definitions themselves don't trip it.

Modules that define or re-export the shims are exempt by
package-relative path (the shim has to live somewhere).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ParsedModule

DEPRECATED_CALLS = frozenset({"get_concept", "get_entity"})
DEPRECATED_NAME = "WorkloadGenerator"

#: package-relative path → why the module may reference the shims.
SHIM_MODULES = {
    "taxonomy/api.py":
        "defines the WorkloadGenerator shim and the canonical "
        "TaxonomyAPI.get_concept/get_entity the shims forward to",
    "taxonomy/service.py":
        "defines the BatchedServingAPI.get_concept/get_entity aliases",
    "taxonomy/__init__.py":
        "re-exports the shims for external callers",
}


class DeprecationChecker:
    """Flag internal use of shimmed APIs kept only for external users."""

    id = "deprecation"
    description = (
        "internal code may not import WorkloadGenerator or call the "
        "get_concept/get_entity aliases"
    )

    def __init__(self, shim_modules: dict[str, str] | None = None) -> None:
        self.shim_modules = dict(
            SHIM_MODULES if shim_modules is None else shim_modules
        )

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        if module.rel in self.shim_modules:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[-1] == DEPRECATED_NAME:
                        findings.append(module.finding(
                            self.id, node,
                            f"import of deprecated {DEPRECATED_NAME} — "
                            "use repro.workloads scenarios instead",
                        ))
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == DEPRECATED_NAME:
                        findings.append(module.finding(
                            self.id, node,
                            f"import of deprecated {DEPRECATED_NAME} — "
                            "use repro.workloads scenarios instead",
                        ))
            elif isinstance(node, ast.Name) and node.id == DEPRECATED_NAME:
                findings.append(module.finding(
                    self.id, node,
                    f"reference to deprecated {DEPRECATED_NAME} — "
                    "use repro.workloads scenarios instead",
                ))
            elif isinstance(node, ast.Call):
                callee = node.func
                if (isinstance(callee, ast.Attribute)
                        and callee.attr in DEPRECATED_CALLS):
                    findings.append(module.finding(
                        self.id, node,
                        f"call to deprecated .{callee.attr}() alias — "
                        "use concept_of/entities_of",
                    ))
        return findings
