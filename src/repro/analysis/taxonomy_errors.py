"""Error-taxonomy checker: public paths raise ReproError, not stdlib.

The CLI maps :class:`~repro.errors.ReproError` to exit code 2, the
HTTP server maps :class:`~repro.errors.APIError` to 400 and
:class:`~repro.errors.ServiceUnavailableError` to 503 — a bare
``KeyError`` escaping a public function bypasses all of that and
surfaces as a stack trace (PR 5 patched exactly this by hand in the
serving path).  This checker enforces the taxonomy at the raise site:

- a ``raise`` of a bare stdlib exception (``KeyError`` / ``ValueError``
  / ``RuntimeError``, called or not) is forbidden inside **public**
  scope — every enclosing function and class name must be
  non-underscore for the site to count, so helpers (``_parse``),
  dunders (``__init__`` argument validation — stdlib types are
  conventional there) and private classes (``_Counter``) are exempt;
- ``raise`` with no exception (bare re-raise) and raises of any other
  name (custom exceptions, ReproError subclasses) pass;
- module-level raises are ignored (import-time guards are their own
  genre).

Grandfathered sites — synthetic-data generators and eval utilities
whose ValueError contracts are pinned by tests — live in the shipped
baseline rather than being churned; new code gets no such grace.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, ParsedModule

FORBIDDEN = frozenset({"KeyError", "ValueError", "RuntimeError"})


class ErrorTaxonomyChecker:
    """Flag bare stdlib raises escaping public functions."""

    id = "error-taxonomy"
    description = (
        "public functions raise ReproError subclasses, never bare "
        "KeyError/ValueError/RuntimeError"
    )

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        self._walk(module, module.tree, [], findings)
        return findings

    def _walk(
        self,
        module: ParsedModule,
        node: ast.AST,
        scope: list[str],
        findings: list[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self._walk(module, child, scope + [child.name], findings)
            elif isinstance(child, ast.Raise):
                self._check_raise(module, child, scope, findings)
                self._walk(module, child, scope, findings)
            else:
                self._walk(module, child, scope, findings)

    def _check_raise(
        self,
        module: ParsedModule,
        node: ast.Raise,
        scope: list[str],
        findings: list[Finding],
    ) -> None:
        # only raises inside a fully-public scope count: at least one
        # enclosing function, and no underscore-prefixed name anywhere
        # in the chain (private helper, dunder, private class).
        if not scope or any(name.startswith("_") for name in scope):
            return
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = exc.id if isinstance(exc, ast.Name) else None
        if name in FORBIDDEN:
            qualname = ".".join(scope)
            findings.append(module.finding(
                self.id, node,
                f"public function {qualname} raises bare {name} — "
                "raise the matching ReproError subclass so the "
                "CLI/HTTP error mapping holds",
                symbol=qualname,
            ))
