"""Pluggable execution backends for the build pipeline.

The :class:`~repro.core.stages.ExecutionPlan` describes *what* may run
concurrently (source waves, verifier relation shards); this module
supplies *how*: an :class:`Executor` maps picklable task payloads over
a backend —

- ``serial`` — plain in-process loop, the reference semantics;
- ``threads`` — ``ThreadPoolExecutor``; cheap to spin up, but the
  stages are pure CPython so the GIL caps what it can win (it mostly
  exists for stages that release the GIL);
- ``processes`` — ``ProcessPoolExecutor`` on real cores.  Workers are
  primed once with a shared payload (a picklable
  :class:`WorkerContext` carved out of the build's
  :class:`~repro.core.stages.BuildContext`) via the pool initializer —
  under the ``fork`` start method (Linux) the payload is inherited,
  never pickled; under ``spawn`` (macOS/Windows default) it is pickled
  once per worker.

Every backend runs the *same* module-level task functions over the
*same* payloads and returns results in submission order, so the merge
logic downstream cannot tell backends apart — byte-identical output at
any ``backend × workers`` is the contract.

Pools are not free: :meth:`Executor.effective_workers` applies a
per-backend *work floor* (estimated work items below it → run inline),
which is what keeps tiny waves and small relation lists from paying
pool overhead for no win.

A task that dies inside a process worker — OOM kill, an unpicklable
task or return value, a broken pool — surfaces as a
:class:`~repro.errors.PipelineError` naming the stage (and source
wave), with the pool torn down; domain errors raised *by* a stage
propagate unchanged, exactly as they do in-process.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

from repro.errors import PipelineError, ReproError
from repro.taxonomy.model import extra_source_names, register_source_name

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineConfig
    from repro.core.stages import BuildContext
    from repro.encyclopedia.model import EncyclopediaDump
    from repro.nlp.lexicon import Lexicon
    from repro.nlp.ner import NamedEntityRecognizer
    from repro.nlp.pmi import PMIStatistics
    from repro.nlp.pos import POSTagger
    from repro.nlp.segmentation import Segmenter

BACKENDS = ("serial", "threads", "processes")

#: Estimated work items (pages scanned by a wave, relations verified by
#: a shard) below which a backend runs inline instead of spinning up a
#: pool.  Threads never beat the GIL on this pure-CPython pipeline, so
#: their floor is high — the thread pool only pays off when a stage
#: releases the GIL over a lot of work.  Processes amortize fork +
#: pickling much sooner.
THREAD_WORK_FLOOR = 8_192
PROCESS_WORK_FLOOR = 2_048


@dataclass(frozen=True)
class WorkerContext:
    """The picklable, slice-scoped carve of a :class:`BuildContext`.

    Everything a stage needs that is *shared and immutable* for the
    whole build: the dump, the config, and the prepared NLP resources.
    Per-build mutable state travels differently — earlier sources'
    output rides inside each task payload (``per_source`` snapshots,
    relation chunks), and worker-side mutations (``discovery``,
    ``training_report``) are returned in task results for the parent
    to apply — so one ``WorkerContext`` primes a process pool once and
    stays valid for every wave and shard of the build.

    ``extra_sources`` carries custom registered source names across the
    process boundary: relation validation consults a module-global
    registry that a ``spawn``-started worker would otherwise lack.
    """

    dump: EncyclopediaDump
    config: PipelineConfig
    lexicon: Lexicon
    segmenter: Segmenter
    tagger: POSTagger
    recognizer: NamedEntityRecognizer
    pmi: PMIStatistics
    corpus: list[list[str]]
    titles: dict[str, str]
    extra_sources: tuple[str, ...] = ()

    @classmethod
    def from_context(cls, context: BuildContext) -> "WorkerContext":
        return cls(
            dump=context.dump,
            config=context.config,
            lexicon=context.lexicon,
            segmenter=context.segmenter,
            tagger=context.tagger,
            recognizer=context.recognizer,
            pmi=context.pmi,
            corpus=context.corpus,
            titles=context.titles,
            extra_sources=tuple(sorted(extra_source_names())),
        )

    def materialize(self) -> BuildContext:
        """A fresh :class:`BuildContext` over the shared resources.

        Safe to call per task: construction only references the shared
        objects (no copying), and re-registering the extra source names
        is idempotent.  Each call returns an independent context, so a
        stage mutating ``per_source`` / ``discovery`` /
        ``training_report`` never races another task.
        """
        from repro.core.stages import BuildContext

        for name in self.extra_sources:
            register_source_name(name)
        return BuildContext(
            dump=self.dump,
            config=self.config,
            lexicon=self.lexicon,
            segmenter=self.segmenter,
            tagger=self.tagger,
            recognizer=self.recognizer,
            pmi=self.pmi,
            corpus=self.corpus,
            titles=self.titles,
        )


@runtime_checkable
class Executor(Protocol):
    """How a build maps task functions over payloads."""

    backend: str
    out_of_process: bool

    def effective_workers(self, n_units: int, work: int) -> int:
        """Workers worth using for *n_units* tasks over *work* items.

        ``1`` means "run inline, do not spin up a pool" — the caller
        must honour it by passing it back to :meth:`run`.
        """
        ...

    def run(
        self,
        fn: Callable,
        tasks: Sequence,
        n_workers: int,
        *,
        shared: object,
        stage: str,
        wave: int | None = None,
    ) -> list:
        """``[fn(shared, task) for task in tasks]``, maybe on a pool.

        Results come back in *tasks* order regardless of completion
        order.  *shared* must be picklable for the processes backend
        (it is shipped to workers once); *stage* / *wave* label any
        failure.
        """
        ...

    def close(self) -> None:
        """Tear down any pool; the executor is single-build, call once."""
        ...


# -- worker-side state (processes backend) -------------------------------------

#: Installed once per worker process by the pool initializer; under
#: ``fork`` it is inherited memory, under ``spawn`` it is unpickled
#: exactly once per worker.
_WORKER_SHARED: object | None = None


def _install_shared(shared: object) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = shared


def _invoke(payload: tuple) -> object:
    fn, task = payload
    return fn(_WORKER_SHARED, task)


# -- backends ------------------------------------------------------------------


class SerialExecutor:
    """The reference backend: everything inline, no pools ever."""

    backend = "serial"
    out_of_process = False

    def __init__(self, max_workers: int = 1, work_floor: int | None = None):
        self.max_workers = 1

    def effective_workers(self, n_units: int, work: int) -> int:
        return 1

    def run(self, fn, tasks, n_workers, *, shared, stage, wave=None):
        return [fn(shared, task) for task in tasks]

    def close(self) -> None:
        pass


class ThreadExecutor:
    """``ThreadPoolExecutor`` over in-process shared objects."""

    backend = "threads"
    out_of_process = False

    def __init__(self, max_workers: int, work_floor: int | None = None):
        self.max_workers = max(1, int(max_workers))
        self.work_floor = (
            THREAD_WORK_FLOOR if work_floor is None else max(0, int(work_floor))
        )

    def effective_workers(self, n_units: int, work: int) -> int:
        if n_units <= 1 or self.max_workers <= 1:
            return 1
        if work < self.work_floor:
            return 1
        return min(self.max_workers, n_units)

    def run(self, fn, tasks, n_workers, *, shared, stage, wave=None):
        if n_workers <= 1 or len(tasks) <= 1:
            return [fn(shared, task) for task in tasks]
        with ThreadPoolExecutor(
            max_workers=min(n_workers, len(tasks)),
            thread_name_prefix="cn-probase-build",
        ) as pool:
            return list(pool.map(lambda task: fn(shared, task), tasks))

    def close(self) -> None:
        pass


class ProcessExecutor:
    """``ProcessPoolExecutor`` primed once with the shared payload.

    The pool is created lazily on the first parallel :meth:`run` and
    kept for the build; a *different* shared object (the resources
    phase ships the bare segmenter, the stage phase a full
    :class:`WorkerContext`) re-primes the pool — cheap under ``fork``.
    """

    backend = "processes"
    out_of_process = True

    def __init__(self, max_workers: int, work_floor: int | None = None):
        self.max_workers = max(1, int(max_workers))
        self.work_floor = (
            PROCESS_WORK_FLOOR if work_floor is None else max(0, int(work_floor))
        )
        self._pool: ProcessPoolExecutor | None = None
        self._installed: object | None = None

    def effective_workers(self, n_units: int, work: int) -> int:
        if n_units <= 1 or self.max_workers <= 1:
            return 1
        if work < self.work_floor:
            return 1
        return min(self.max_workers, n_units)

    def _ensure_pool(self, shared: object) -> ProcessPoolExecutor:
        if self._pool is not None and self._installed is shared:
            return self._pool
        self.close()
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=multiprocessing.get_context(start_method),
            initializer=_install_shared,
            initargs=(shared,),
        )
        self._installed = shared
        return self._pool

    def run(self, fn, tasks, n_workers, *, shared, stage, wave=None):
        if n_workers <= 1 or len(tasks) <= 1:
            return [fn(shared, task) for task in tasks]
        futures = []
        try:
            pool = self._ensure_pool(shared)
            futures = [pool.submit(_invoke, (fn, task)) for task in tasks]
            return [future.result() for future in futures]
        except ReproError:
            # A stage raised a domain error inside a worker: the pool is
            # healthy and the error means what it means in-process.
            raise
        except Exception as exc:
            # Everything else is the backend failing us: a worker died
            # (BrokenProcessPool — OOM kill, os._exit), a task or its
            # return value would not pickle, the pool would not start.
            for future in futures:
                future.cancel()
            self.close()
            where = f"stage {stage!r}"
            if wave is not None:
                where += f" (source wave {wave})"
            raise PipelineError(
                f"processes backend failed in {where}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def close(self) -> None:
        pool, self._pool, self._installed = self._pool, None, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


def resolve_executor(
    backend: str, workers: int, work_floor: int | None = None
) -> Executor:
    """The :class:`Executor` for a plan's backend/workers/floor."""
    if backend == "serial" or workers <= 1:
        return SerialExecutor()
    if backend == "threads":
        return ThreadExecutor(workers, work_floor)
    if backend == "processes":
        return ProcessExecutor(workers, work_floor)
    known = ", ".join(BACKENDS)
    raise PipelineError(f"unknown backend {backend!r}; expected one of {known}")
