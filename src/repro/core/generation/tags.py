"""Direct extraction: tags as hypernyms (Section II).

A tag is a word or phrase describing the entity; the majority of tags are
hypernyms, so the extractor emits them directly.  All noise handling is
deferred to the verification module, exactly as the paper does.
"""

from __future__ import annotations

from repro.encyclopedia.model import EncyclopediaPage
from repro.taxonomy.model import SOURCE_TAG, IsARelation


class TagExtractor:
    """Tag source of the generation module."""

    def __init__(self, max_tag_len: int = 8) -> None:
        self._max_tag_len = max_tag_len

    def extract_from_page(self, page: EncyclopediaPage) -> list[IsARelation]:
        relations: list[IsARelation] = []
        seen: set[str] = set()
        for tag in page.tags:
            tag = tag.strip()
            if (
                not tag
                or tag in seen
                or tag == page.title
                or len(tag) > self._max_tag_len
            ):
                continue
            seen.add(tag)
            relations.append(
                IsARelation(
                    hyponym=page.page_id,
                    hypernym=tag,
                    source=SOURCE_TAG,
                )
            )
        return relations

    def extract(self, pages) -> list[IsARelation]:
        relations: list[IsARelation] = []
        for page in pages:
            relations.extend(self.extract_from_page(page))
        return relations


class TagSource:
    """Registry adapter: the direct tag-extraction generation stage."""

    name = SOURCE_TAG
    # Explicitly dependency-free: reads no other source's output, so the
    # ExecutionPlan may schedule it in the first wave.
    requires = ()
    # Per-page output depends on nothing but the page itself (no PMI, no
    # lexicon, no other pages), and every emitted relation carries the
    # page's id as its hyponym.  That is the ``page_local`` contract:
    # incremental builds replay this stage's previous candidates for
    # unchanged pages and re-extract only the diff's pages.
    page_local = True

    def generate(self, context) -> list[IsARelation]:
        return TagExtractor().extract(context.generation_pages())
