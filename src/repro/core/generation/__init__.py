"""Generation module: isA acquisition from the four encyclopedia sources.

Each extractor ships with a registry adapter (``*Source``) satisfying
the :class:`~repro.core.stages.GenerationSource` protocol; the adapters
are what :func:`~repro.core.stages.default_registry` registers.
"""

from repro.core.generation.merge import CandidatePool
from repro.core.generation.neural_gen import (
    AbstractSource,
    NeuralGenConfig,
    NeuralGenerator,
)
from repro.core.generation.predicates import (
    DiscoveryResult,
    InfoboxSource,
    PredicateDiscovery,
)
from repro.core.generation.separation import (
    BracketExtractor,
    BracketSource,
    SeparationAlgorithm,
    SeparationNode,
)
from repro.core.generation.tags import TagExtractor, TagSource

__all__ = [
    "AbstractSource",
    "BracketExtractor",
    "BracketSource",
    "CandidatePool",
    "DiscoveryResult",
    "InfoboxSource",
    "NeuralGenConfig",
    "NeuralGenerator",
    "PredicateDiscovery",
    "SeparationAlgorithm",
    "SeparationNode",
    "TagExtractor",
    "TagSource",
]
