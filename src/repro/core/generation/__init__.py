"""Generation module: isA acquisition from the four encyclopedia sources."""

from repro.core.generation.merge import CandidatePool
from repro.core.generation.neural_gen import NeuralGenConfig, NeuralGenerator
from repro.core.generation.predicates import (
    DiscoveryResult,
    PredicateDiscovery,
)
from repro.core.generation.separation import (
    BracketExtractor,
    SeparationAlgorithm,
    SeparationNode,
)
from repro.core.generation.tags import TagExtractor

__all__ = [
    "BracketExtractor",
    "CandidatePool",
    "DiscoveryResult",
    "NeuralGenConfig",
    "NeuralGenerator",
    "PredicateDiscovery",
    "SeparationAlgorithm",
    "SeparationNode",
    "TagExtractor",
]
