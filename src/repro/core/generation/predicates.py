"""Predicate discovery: isA relations from the infobox (Section II).

Distant supervision à la Mintz et al.: bracket-derived isA relations (the
highest-precision source, >96%) act as prior knowledge.  A predicate is a
*candidate* implicit-isA predicate when at least one of its SPO triples
aligns with a prior relation — ``<周杰伦, 职业, 歌手>`` aligns with
``isA(周杰伦, 歌手)``.  The paper finds 341 candidates this way and
manually keeps 12.  We reproduce the manual curation with a support-ratio
selection rule (high-ratio candidates are exactly the ones a human keeps);
the curated whitelist of the synthetic world is recovered automatically,
which the benchmark checks.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.encyclopedia.model import EncyclopediaDump
from repro.nlp.text import is_cjk_word
from repro.taxonomy.model import SOURCE_BRACKET, SOURCE_INFOBOX, IsARelation


@dataclass(frozen=True)
class PredicateCandidate:
    """One discovered candidate with its alignment statistics."""

    name: str
    aligned: int       # triples whose value matches a prior hypernym
    total: int         # all triples with this predicate

    @property
    def support(self) -> float:
        return self.aligned / self.total if self.total else 0.0


@dataclass
class DiscoveryResult:
    """Candidates (paper: 341) and the selected predicates (paper: 12)."""

    candidates: list[PredicateCandidate] = field(default_factory=list)
    selected: list[str] = field(default_factory=list)

    @property
    def n_candidates(self) -> int:
        return len(self.candidates)

    def candidate(self, name: str) -> PredicateCandidate | None:
        for cand in self.candidates:
            if cand.name == name:
                return cand
        return None


class PredicateDiscovery:
    """Align infobox triples with prior isA relations to find predicates."""

    def __init__(
        self,
        min_aligned: int = 2,
        min_support: float = 0.28,
        max_selected: int = 12,
    ) -> None:
        if not 0.0 <= min_support <= 1.0:
            raise ValueError(f"min_support must be in [0,1], got {min_support}")
        self._min_aligned = min_aligned
        self._min_support = min_support
        self._max_selected = max_selected

    def discover(
        self,
        dump: EncyclopediaDump,
        prior_relations: list[IsARelation],
    ) -> DiscoveryResult:
        """Return ranked candidates plus the auto-curated selection."""
        prior: dict[str, set[str]] = defaultdict(set)
        for relation in prior_relations:
            prior[relation.hyponym].add(relation.hypernym)

        aligned: Counter[str] = Counter()
        totals: Counter[str] = Counter()
        for page in dump:
            hypernyms = prior.get(page.page_id, ())
            for triple in page.infobox:
                totals[triple.predicate] += 1
                if triple.value in hypernyms:
                    aligned[triple.predicate] += 1

        candidates = [
            PredicateCandidate(name=name, aligned=count, total=totals[name])
            for name, count in aligned.items()
        ]
        candidates.sort(key=lambda c: (-c.support, -c.aligned, c.name))
        selected = [
            c.name
            for c in candidates
            if c.aligned >= self._min_aligned and c.support >= self._min_support
        ][: self._max_selected]
        return DiscoveryResult(candidates=candidates, selected=selected)

    def extract(
        self,
        dump: EncyclopediaDump,
        predicates: list[str],
    ) -> list[IsARelation]:
        """Emit isA relations from the selected predicates' triples."""
        wanted = set(predicates)
        relations: list[IsARelation] = []
        seen: set[tuple[str, str]] = set()
        for page in dump:
            for triple in page.infobox:
                if triple.predicate not in wanted:
                    continue
                value = triple.value.strip()
                if not value or value == page.title:
                    continue
                if not is_cjk_word(value) or len(value) < 2:
                    continue
                key = (page.page_id, value)
                if key in seen:
                    continue
                seen.add(key)
                relations.append(
                    IsARelation(
                        hyponym=page.page_id,
                        hypernym=value,
                        source=SOURCE_INFOBOX,
                    )
                )
        return relations


class InfoboxSource:
    """Registry adapter: the infobox predicate-discovery generation stage.

    Discovery aligns infobox values against the bracket source's output,
    so without bracket priors the stage reports "did not run".
    """

    name = SOURCE_INFOBOX
    # Aligns against the bracket source's output, so the ExecutionPlan
    # places this stage in a wave after "bracket".
    requires = (SOURCE_BRACKET,)

    def generate(self, context) -> list[IsARelation] | None:
        priors = context.relations_from(SOURCE_BRACKET)
        if not priors:
            return None
        config = context.config
        discoverer = PredicateDiscovery(
            min_aligned=config.predicate_min_aligned,
            min_support=config.predicate_min_support,
            max_selected=config.predicate_max_selected,
        )
        context.discovery = discoverer.discover(context.dump, priors)
        return discoverer.extract(context.dump, context.discovery.selected)
