"""Candidate pool: merging per-source relations (Figure 2, centre).

Candidate isA relations from all four sources are merged, deduplicated,
and the concept layer is identified: a page whose *title* is used as a
hypernym elsewhere describes a concept, so its own relations become
subconcept-concept relations (男演员 isA 演员) rather than entity-concept
ones.  This is where the paper's 527K subconcept relations come from.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.encyclopedia.model import EncyclopediaDump
from repro.taxonomy.model import (
    HYPONYM_CONCEPT,
    SOURCE_ABSTRACT,
    SOURCE_BRACKET,
    SOURCE_INFOBOX,
    SOURCE_TAG,
    IsARelation,
)

# Precedence for the provenance kept on duplicates: highest-precision
# source first (the paper measures bracket 96.2% > infobox ≈ tag 97.4%
# estimated post-verification > abstract).
SOURCE_PRIORITY = {
    SOURCE_BRACKET: 0,
    SOURCE_INFOBOX: 1,
    SOURCE_TAG: 2,
    SOURCE_ABSTRACT: 3,
    "baseline": 4,
}


@dataclass(frozen=True)
class PoolStats:
    """Counts per stage of the merge."""

    added: int
    unique: int
    per_source: dict[str, int]


class CandidatePool:
    """Dedup-merging container for candidate isA relations."""

    def __init__(self) -> None:
        self._relations: dict[tuple[str, str], IsARelation] = {}
        self._sources: dict[tuple[str, str], set[str]] = defaultdict(set)
        self._added = 0

    def add(self, relations: list[IsARelation]) -> None:
        for relation in relations:
            self._added += 1
            self._sources[relation.key].add(relation.source)
            current = self._relations.get(relation.key)
            if current is None or (
                SOURCE_PRIORITY.get(relation.source, 9)
                < SOURCE_PRIORITY.get(current.source, 9)
            ):
                self._relations[relation.key] = relation

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._relations

    def relations(self) -> list[IsARelation]:
        return list(self._relations.values())

    def sources_of(self, key: tuple[str, str]) -> frozenset[str]:
        return frozenset(self._sources.get(key, ()))

    def from_source(self, source: str) -> list[IsARelation]:
        """All relations that *source* contributed (pre-dedup provenance)."""
        return [
            relation
            for key, relation in self._relations.items()
            if source in self._sources[key]
        ]

    def stats(self) -> PoolStats:
        per_source: dict[str, int] = defaultdict(int)
        for sources in self._sources.values():
            for source in sources:
                per_source[source] += 1
        return PoolStats(
            added=self._added,
            unique=len(self._relations),
            per_source=dict(per_source),
        )

    # -- concept layer identification -------------------------------------

    def reclassify_concept_pages(self, dump: EncyclopediaDump) -> int:
        """Turn relations of concept-describing pages into concept pairs.

        A page is concept-describing when its title appears as a hypernym
        in the pool and the page carries no disambiguation bracket (real
        entities with concept-colliding names keep their bracket).
        Returns the number of rewritten relations.
        """
        hypernym_surfaces = {
            relation.hypernym for relation in self._relations.values()
        }
        rewritten = 0
        for key in list(self._relations):
            relation = self._relations[key]
            if relation.hyponym_kind == HYPONYM_CONCEPT:
                continue
            page = dump.get(relation.hyponym)
            if page is None or page.bracket:
                continue
            if page.title not in hypernym_surfaces:
                continue
            if page.title == relation.hypernym:
                del self._relations[key]
                self._sources.pop(key, None)
                continue
            replacement = IsARelation(
                hyponym=page.title,
                hypernym=relation.hypernym,
                source=relation.source,
                hyponym_kind=HYPONYM_CONCEPT,
                score=relation.score,
            )
            del self._relations[key]
            sources = self._sources.pop(key)
            if replacement.key not in self._relations:
                self._relations[replacement.key] = replacement
            self._sources[replacement.key] |= sources
            rewritten += 1
        return rewritten
