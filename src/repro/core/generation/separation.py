"""Separation algorithm: hypernyms from bracket noun compounds (Section II).

The bracket of a disambiguated entity (``陈龙（蚂蚁金服首席战略官）``)
is a noun compound whose right side names the entity's hypernyms.  The
algorithm of the paper builds a binary tree over the segmented compound by
a PMI-guided sliding window:

- Step 1: for window ``(x_{i-1}, x_i, x_{i+1})``, if
  ``PMI(x_{i-1}, x_i) < PMI(x_i, x_{i+1})`` merge the right pair (step 2),
  otherwise just slide left (step 3);
- Step 4: at the left edge, if ``PMI(x_1, x_2) > PMI(x_2, x_3)`` merge the
  front pair, then re-scan.

Merges recorded as ⊕ operations form the binary tree; the hypernyms are
the node texts along the tree's rightmost path (蚂蚁金服首席战略官 →
首席战略官 and 战略官, the blue phrases of Figure 3).

The paper leaves the termination of the window dance unspecified; we
complete it deterministically: repeated right-to-left sweeps, the front
merge at the edge, a final merge for two remaining units, and — should a
sweep make no progress (uniform PMI plateaus) — a fallback merge of the
maximum-PMI adjacent pair.  An ``agglomerative`` mode (always merge the
globally best pair) is provided for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encyclopedia.model import EncyclopediaPage
from repro.errors import SegmentationError
from repro.nlp.pmi import PMIStatistics
from repro.nlp.pos import POSTagger
from repro.nlp.segmentation import Segmenter
from repro.nlp.text import split_phrases
from repro.taxonomy.model import SOURCE_BRACKET, IsARelation


@dataclass
class SeparationNode:
    """A node of the separation binary tree."""

    words: tuple[str, ...]
    left: "SeparationNode | None" = None
    right: "SeparationNode | None" = None

    @property
    def text(self) -> str:
        return "".join(self.words)

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    @classmethod
    def leaf(cls, word: str) -> "SeparationNode":
        return cls(words=(word,))

    @classmethod
    def merge(cls, left: "SeparationNode", right: "SeparationNode") -> "SeparationNode":
        return cls(words=left.words + right.words, left=left, right=right)


class SeparationAlgorithm:
    """PMI sliding-window compound bracketing."""

    def __init__(self, pmi: PMIStatistics, agglomerative: bool = False) -> None:
        self._pmi = pmi
        self._agglomerative = agglomerative

    def _boundary_pmi(self, left: SeparationNode, right: SeparationNode) -> float:
        """PMI across the junction of two units (boundary words)."""
        return self._pmi.pmi(left.words[-1], right.words[0])

    def build_tree(self, words: list[str]) -> SeparationNode:
        """Build the separation tree over a segmented compound."""
        if not words:
            raise SegmentationError("cannot separate an empty compound")
        units = [SeparationNode.leaf(w) for w in words]
        if self._agglomerative:
            return self._build_agglomerative(units)
        return self._build_sliding_window(units)

    def _build_agglomerative(self, units: list[SeparationNode]) -> SeparationNode:
        while len(units) > 1:
            best = max(
                range(len(units) - 1),
                key=lambda i: self._boundary_pmi(units[i], units[i + 1]),
            )
            units[best:best + 2] = [SeparationNode.merge(units[best], units[best + 1])]
        return units[0]

    def _build_sliding_window(self, units: list[SeparationNode]) -> SeparationNode:
        while len(units) > 1:
            if len(units) == 2:
                units = [SeparationNode.merge(units[0], units[1])]
                continue
            merged_any = False
            # Right-to-left sweep: window middle index m over (m-1, m, m+1).
            m = len(units) - 2
            while m >= 1:
                left_pmi = self._boundary_pmi(units[m - 1], units[m])
                right_pmi = self._boundary_pmi(units[m], units[m + 1])
                if left_pmi < right_pmi:
                    # Step 2: bind the middle to its right neighbour.
                    units[m:m + 2] = [
                        SeparationNode.merge(units[m], units[m + 1])
                    ]
                    merged_any = True
                m -= 1  # steps 2 and 3 both slide the window left
            # Step 4: front-pair merge at the left edge.
            if len(units) >= 3:
                if self._boundary_pmi(units[0], units[1]) > self._boundary_pmi(
                    units[1], units[2]
                ):
                    units[0:2] = [SeparationNode.merge(units[0], units[1])]
                    merged_any = True
            if not merged_any and len(units) > 2:
                # PMI plateau: force progress on the best adjacent pair.
                best = max(
                    range(len(units) - 1),
                    key=lambda i: self._boundary_pmi(units[i], units[i + 1]),
                )
                units[best:best + 2] = [
                    SeparationNode.merge(units[best], units[best + 1])
                ]
        return units[0]

    def hypernyms(self, words: list[str]) -> list[str]:
        """Node texts along the rightmost path of the separation tree.

        A single-word compound is its own hypernym.
        """
        if len(words) == 1:
            return [words[0]]
        tree = self.build_tree(words)
        result: list[str] = []
        node = tree
        while node.right is not None:
            node = node.right
            result.append(node.text)
        return result


class BracketExtractor:
    """Bracket source of the generation module.

    Splits the bracket annotation into phrases (``演员、歌手``), runs the
    separation algorithm on each, and emits one candidate isA relation per
    hypernym.  A light shape filter (hypernyms must contain CJK and not be
    pure function words) keeps this source at its naturally high precision
    without doing the verification module's job.
    """

    def __init__(
        self,
        segmenter: Segmenter,
        pmi: PMIStatistics,
        tagger: POSTagger | None = None,
        agglomerative: bool = False,
    ) -> None:
        self._segmenter = segmenter
        self._algorithm = SeparationAlgorithm(pmi, agglomerative=agglomerative)
        self._tagger = tagger if tagger is not None else POSTagger(segmenter.lexicon)

    @property
    def algorithm(self) -> SeparationAlgorithm:
        return self._algorithm

    def extract_from_page(self, page: EncyclopediaPage) -> list[IsARelation]:
        if not page.bracket:
            return []
        relations: list[IsARelation] = []
        seen: set[str] = set()
        for phrase in split_phrases(page.bracket):
            try:
                words = self._segmenter.segment(phrase)
            except SegmentationError:
                continue
            for hypernym in self._algorithm.hypernyms(words):
                if hypernym in seen or not self._plausible(hypernym):
                    continue
                seen.add(hypernym)
                relations.append(
                    IsARelation(
                        hyponym=page.page_id,
                        hypernym=hypernym,
                        source=SOURCE_BRACKET,
                    )
                )
        return relations

    def extract(self, pages) -> list[IsARelation]:
        """Run over an iterable of pages (e.g. a dump)."""
        relations: list[IsARelation] = []
        for page in pages:
            relations.extend(self.extract_from_page(page))
        return relations

    def _plausible(self, hypernym: str) -> bool:
        if len(hypernym) < 2:
            return False
        tag = self._tagger.tag(hypernym)
        return tag not in ("m", "x", "u", "v")


class BracketSource:
    """Registry adapter: the bracket-separation generation stage.

    Runs first so its high-precision output can distant-supervise the
    abstract source and align the infobox predicate discovery.
    """

    name = SOURCE_BRACKET
    # Explicitly dependency-free: reads no other source's output, so the
    # ExecutionPlan may schedule it in the first wave.
    requires = ()

    def generate(self, context) -> list[IsARelation]:
        extractor = BracketExtractor(
            context.segmenter,
            context.pmi,
            context.tagger,
            agglomerative=context.config.agglomerative_separation,
        )
        return extractor.extract(context.dump)
