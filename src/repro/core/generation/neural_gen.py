"""Neural generation: concepts from abstracts (Section II).

Distant supervision builds the training set: for every bracket-derived isA
relation (precision > 96%), the hyponym's abstract is the source and the
hypernym the target.  A CopyNet-style encoder-decoder then generates
hypernyms for pages the other sources miss.  The copy mechanism matters
because many true hypernyms appear verbatim in the abstract but are
out-of-vocabulary for a small generation vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encyclopedia.model import EncyclopediaDump, EncyclopediaPage
from repro.errors import PipelineError, SegmentationError
from repro.neural.dataset import Seq2SeqDataset, Seq2SeqExample
from repro.neural.model import CopyNetSeq2Seq
from repro.neural.training import Trainer, TrainingConfig, TrainingReport
from repro.neural.vocab import Vocabulary
from repro.nlp.segmentation import Segmenter
from repro.nlp.text import is_cjk_word
from repro.taxonomy.model import SOURCE_ABSTRACT, SOURCE_BRACKET, IsARelation


@dataclass
class NeuralGenConfig:
    """Hyper-parameters of the abstract-source generator."""

    embed_dim: int = 24
    hidden_dim: int = 32
    epochs: int = 8
    batch_size: int = 16
    lr: float = 8e-3
    max_src_len: int = 24
    max_tgt_len: int = 3
    vocab_size: int = 6000
    min_train_examples: int = 20
    min_confidence: float = 0.35
    seed: int = 0


class NeuralGenerator:
    """Distant-supervision trained abstract→hypernym generator."""

    def __init__(
        self, segmenter: Segmenter, config: NeuralGenConfig | None = None
    ) -> None:
        self._segmenter = segmenter
        self.config = config if config is not None else NeuralGenConfig()
        self._model: CopyNetSeq2Seq | None = None
        self._vocab: Vocabulary | None = None
        self.last_report: TrainingReport | None = None

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    # -- distant supervision ---------------------------------------------------

    def build_dataset(
        self,
        dump: EncyclopediaDump,
        bracket_relations: list[IsARelation],
    ) -> Seq2SeqDataset:
        """Pair each bracket hypernym with its hyponym's abstract."""
        examples: list[Seq2SeqExample] = []
        for relation in bracket_relations:
            if relation.source != SOURCE_BRACKET:
                continue
            page = dump.get(relation.hyponym)
            if page is None or not page.has_abstract:
                continue
            source = self._segment(page.abstract, self.config.max_src_len)
            target = self._segment(relation.hypernym, self.config.max_tgt_len)
            if source and target:
                examples.append(
                    Seq2SeqExample(source=tuple(source), target=tuple(target))
                )
        return Seq2SeqDataset(examples)

    def _segment(self, text: str, limit: int) -> list[str]:
        try:
            return self._segmenter.segment(text)[:limit]
        except SegmentationError:
            return []

    # -- training ------------------------------------------------------------------

    def train(self, dataset: Seq2SeqDataset) -> TrainingReport:
        if len(dataset) < self.config.min_train_examples:
            raise PipelineError(
                f"neural generation needs >= {self.config.min_train_examples} "
                f"distant-supervision examples, got {len(dataset)}"
            )
        self._vocab = Vocabulary.build(
            [list(e.source) + list(e.target) for e in dataset],
            max_size=self.config.vocab_size,
        )
        self._model = CopyNetSeq2Seq(
            vocab_size=len(self._vocab),
            embed_dim=self.config.embed_dim,
            hidden_dim=self.config.hidden_dim,
            seed=self.config.seed,
        )
        trainer = Trainer(
            self._model,
            self._vocab,
            TrainingConfig(
                epochs=self.config.epochs,
                batch_size=self.config.batch_size,
                lr=self.config.lr,
                max_src_len=self.config.max_src_len,
                max_tgt_len=self.config.max_tgt_len,
                shuffle_seed=self.config.seed,
            ),
        )
        self.last_report = trainer.fit(dataset)
        return self.last_report

    # -- extraction ------------------------------------------------------------------

    def generate_for_page(self, page: EncyclopediaPage) -> str | None:
        """Generate one hypernym string from a page's abstract."""
        if self._model is None or self._vocab is None:
            raise PipelineError("neural generator used before training")
        if not page.has_abstract:
            return None
        source = self._segment(page.abstract, self.config.max_src_len)
        if not source:
            return None
        tokens, confidence = self._model.generate_with_confidence(
            self._vocab, source, max_len=self.config.max_tgt_len
        )
        if confidence < self.config.min_confidence:
            return None
        hypernym = "".join(tokens)
        if len(hypernym) < 2 or not is_cjk_word(hypernym):
            return None
        if hypernym == page.title:
            return None
        return hypernym

    def extract(self, pages) -> list[IsARelation]:
        relations: list[IsARelation] = []
        for page in pages:
            hypernym = self.generate_for_page(page)
            if hypernym is not None:
                relations.append(
                    IsARelation(
                        hyponym=page.page_id,
                        hypernym=hypernym,
                        source=SOURCE_ABSTRACT,
                    )
                )
        return relations


class AbstractSource:
    """Registry adapter: the neural (CopyNet) abstract generation stage.

    Preconditions: the bracket source must have produced priors for
    distant supervision and the derived dataset must be large enough to
    train on; otherwise the stage reports "did not run" (``None``).
    """

    name = SOURCE_ABSTRACT
    # Reads the bracket source's output: the ExecutionPlan schedules this
    # stage in a wave after "bracket" when the build runs with workers.
    requires = (SOURCE_BRACKET,)

    def generate(self, context) -> list[IsARelation] | None:
        priors = context.relations_from(SOURCE_BRACKET)
        if not priors:
            return None
        generator = NeuralGenerator(context.segmenter, context.config.neural)
        dataset = generator.build_dataset(context.dump, priors)
        if len(dataset) < context.config.neural.min_train_examples:
            return None
        context.training_report = generator.train(dataset)
        pages = list(context.dump)
        if context.config.max_generation_pages is not None:
            pages = pages[: context.config.max_generation_pages]
        return generator.extract(pages)
