"""Pluggable stage architecture for the build pipeline (Figure 2).

The paper's flow — four generation sources feeding a merged candidate
pool, three disjunctive verifiers pruning it — is an open pipeline here,
not a hard-coded sequence.  :class:`StageRegistry` holds named, ordered
stage registrations; :func:`default_registry` provides the paper's
built-ins (bracket / abstract / infobox / tag sources and syntax / ner /
incompatible verifiers); third parties register their own stages against
the same registry and :class:`~repro.core.pipeline.CNProbaseBuilder`
runs them without modification.

A stage is any object satisfying one of two structural protocols:

- :class:`GenerationSource` — ``generate(context)`` returns candidate
  isA relations (or ``None`` when the stage's preconditions are unmet,
  e.g. the abstract source without bracket priors to distant-supervise
  on);
- :class:`Verifier` — ``verify(context, relations)`` returns a
  :class:`~repro.core.verification.incompatible.FilterDecision`
  splitting the survivors from the vetoed.

Both receive a :class:`BuildContext` carrying the shared NLP resources
(lexicon, segmenter, tagger, recognizer, PMI statistics, segmented
corpus, page titles) prepared exactly once by the driver, so stages stop
re-deriving them.  Per-stage wall-clock, candidate counts, worker counts
and cache hits land in a :class:`StageTrace` on the build result.

Stages additionally carry two optional scheduling declarations the
:class:`ExecutionPlan` consumes:

- ``requires`` (sources) — names of earlier sources whose output the
  stage reads through :meth:`BuildContext.relations_from`; sources with
  no unmet requirement run concurrently in one *wave* when the build is
  given workers.  Parallelism is opt-in: a source that declares nothing
  is scheduled after **every** source registered before it (the exact
  serial contract pre-dating the planner), so existing third-party
  stages keep seeing their predecessors' output;
- ``per_relation_pure`` (verifiers) — a promise that
  ``verify(context, chunk)`` over any partition of the relation list,
  concatenated in order, equals one ``verify`` over the whole list; the
  driver shards such verifiers over relation chunks.

Neither declaration changes results: a plan executed with one worker and
with N workers produces byte-identical taxonomies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.errors import PipelineError
from repro.taxonomy.model import IsARelation, register_source_name

if TYPE_CHECKING:
    from repro.core.generation.predicates import DiscoveryResult
    from repro.core.pipeline import PipelineConfig
    from repro.core.verification.incompatible import FilterDecision
    from repro.encyclopedia.model import EncyclopediaDump
    from repro.neural.training import TrainingReport
    from repro.nlp.lexicon import Lexicon
    from repro.nlp.ner import NamedEntityRecognizer
    from repro.nlp.pmi import PMIStatistics
    from repro.nlp.pos import POSTagger
    from repro.nlp.segmentation import Segmenter

SOURCE_KIND = "source"
VERIFIER_KIND = "verifier"
DRIVER_KIND = "driver"


@dataclass
class BuildContext:
    """Shared resources for one build, prepared once by the driver.

    Stages read what they need instead of re-deriving it; the abstract
    and infobox sources additionally read the bracket source's output
    through :meth:`relations_from` (distant supervision / predicate
    alignment), which is why source order matters.
    """

    dump: EncyclopediaDump
    config: PipelineConfig
    lexicon: Lexicon
    segmenter: Segmenter
    tagger: POSTagger
    recognizer: NamedEntityRecognizer
    pmi: PMIStatistics
    corpus: list[list[str]]
    titles: dict[str, str]
    # Mutable per-build state the stages fill in.
    per_source: dict[str, list[IsARelation]] = field(default_factory=dict)
    discovery: DiscoveryResult | None = None
    training_report: TrainingReport | None = None
    # Incremental builds: the page_ids a page-local source must
    # (re)generate for; None means the whole dump (the full-build case).
    generation_scope: frozenset[str] | None = None

    def relations_from(self, source: str) -> list[IsARelation]:
        """Candidates an earlier source produced (empty if it didn't run)."""
        return self.per_source.get(source, [])

    def generation_pages(self):
        """The pages a ``page_local`` source should extract from.

        Full builds return the whole dump.  During an incremental build
        the driver narrows the scope to the diff's added + changed
        pages and replays the previous build's candidates for the rest
        — only sources declaring ``page_local = True`` (per-page output
        depends on nothing but the page itself) may consume this; every
        other source keeps reading ``context.dump`` in full.
        """
        if self.generation_scope is None:
            return self.dump
        return [
            page for page in self.dump
            if page.page_id in self.generation_scope
        ]


@runtime_checkable
class GenerationSource(Protocol):
    """A candidate-producing stage (left side of Figure 2)."""

    name: str

    def generate(self, context: BuildContext) -> list[IsARelation] | None:
        """Extract candidates; ``None`` means preconditions were unmet."""
        ...


@runtime_checkable
class Verifier(Protocol):
    """A candidate-vetoing stage (right side of Figure 2)."""

    name: str

    def verify(
        self, context: BuildContext, relations: list[IsARelation]
    ) -> FilterDecision:
        """Split *relations* into kept and removed."""
        ...


# -- trace ---------------------------------------------------------------------


@dataclass(frozen=True)
class StageRecord:
    """One stage's contribution to a build.

    ``count`` is candidates produced for sources, candidates removed for
    verifiers, and relations handled for driver steps.  ``ran=False``
    marks a stage that contributed nothing — disabled by a switch, or
    executed with unmet preconditions (``generate()`` returned ``None``;
    ``seconds`` then keeps the time that probe cost) — so ablation runs
    still show the full pipeline shape.

    ``workers`` is how many workers actually served the stage (sharded
    verifiers; >1 on a source means it shared its wave with others),
    ``backend`` is the executor that served it (``serial`` / ``threads``
    / ``processes``), and ``cache_hit`` marks work skipped because a
    cache answered (today: the ``resources`` driver step under the
    build-context cache).
    """

    name: str
    kind: str
    seconds: float
    count: int
    ran: bool = True
    workers: int = 1
    cache_hit: bool = False
    backend: str = "serial"


@dataclass
class StageTrace:
    """Per-stage wall-clock and candidate accounting for one build."""

    records: list[StageRecord] = field(default_factory=list)
    total_seconds: float = 0.0

    def add(self, record: StageRecord) -> None:
        self.records.append(record)

    def get(self, name: str) -> StageRecord | None:
        for record in self.records:
            if record.name == name:
                return record
        return None

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def ran(self, kind: str | None = None) -> list[StageRecord]:
        """Records of stages that actually executed, optionally by kind."""
        return [
            r for r in self.records
            if r.ran and (kind is None or r.kind == kind)
        ]

    @property
    def stage_seconds(self) -> float:
        """Wall-clock spent inside stages and driver steps."""
        return sum(r.seconds for r in self.records)

    @property
    def overhead_seconds(self) -> float:
        """Registry dispatch + bookkeeping: total minus traced work."""
        return max(0.0, self.total_seconds - self.stage_seconds)

    def as_dict(self) -> dict[str, dict[str, float | int | bool | str]]:
        return {
            r.name: {
                "kind": r.kind,
                "seconds": r.seconds,
                "count": r.count,
                "ran": r.ran,
                "workers": r.workers,
                "cache_hit": r.cache_hit,
                "backend": r.backend,
            }
            for r in self.records
        }


# -- registry ------------------------------------------------------------------


@dataclass
class StageEntry:
    """One named registration: how to build a stage, and whether to.

    ``requires`` (sources only) lists earlier sources whose output this
    stage reads; the :class:`ExecutionPlan` schedules it in a later wave
    than every active requirement.  Defaults to the factory's
    ``requires`` class attribute, so stage classes can declare their own
    data dependencies.  ``None`` means undeclared: the planner then
    conservatively schedules the stage after every source ahead of it
    in registration order — i.e. exactly the serial pipeline's
    ``relations_from`` visibility.  Declare ``requires = ()`` to opt a
    dependency-free stage into the first wave.
    """

    name: str
    kind: str
    factory: Callable[[], object]
    origin: str
    enabled: bool = True
    config_flag: str | None = None
    requires: tuple[str, ...] | None = None

    def active(self, config: object) -> bool:
        """Registry switch ANDed with the legacy ``PipelineConfig`` flag."""
        if not self.enabled:
            return False
        if self.config_flag is None:
            return True
        return bool(getattr(config, self.config_flag, True))


class StageRegistry:
    """Named, ordered registry of generation sources and verifiers.

    Sources run in registration order, then verifiers in registration
    order — the disjunctive semantics of the verification module make
    verifier order irrelevant for the final set, but the order is still
    honoured and traced.  Names are unique across both kinds.
    """

    def __init__(self) -> None:
        self._entries: dict[str, StageEntry] = {}
        self._order: dict[str, list[str]] = {SOURCE_KIND: [], VERIFIER_KIND: []}

    # -- registration -----------------------------------------------------

    def register_source(
        self,
        name: str,
        factory: Callable[[], object],
        *,
        origin: str | None = None,
        index: int | None = None,
        config_flag: str | None = None,
        requires: tuple[str, ...] | None = None,
    ) -> StageEntry:
        """Register a :class:`GenerationSource` factory under *name*.

        Also registers *name* as a valid relation provenance so the
        stage can stamp its output ``IsARelation(source=name)``.
        *requires* defaults to the factory's ``requires`` attribute.
        """
        entry = self._register(
            SOURCE_KIND, name, factory, origin, index, config_flag, requires
        )
        register_source_name(name)
        return entry

    def register_verifier(
        self,
        name: str,
        factory: Callable[[], object],
        *,
        origin: str | None = None,
        index: int | None = None,
        config_flag: str | None = None,
    ) -> StageEntry:
        """Register a :class:`Verifier` factory under *name*."""
        return self._register(
            VERIFIER_KIND, name, factory, origin, index, config_flag, None
        )

    def _register(
        self,
        kind: str,
        name: str,
        factory: Callable[[], object],
        origin: str | None,
        index: int | None,
        config_flag: str | None,
        requires: tuple[str, ...] | None,
    ) -> StageEntry:
        if not name:
            raise PipelineError("stage name must be non-empty")
        if name in self._entries:
            raise PipelineError(
                f"stage {name!r} is already registered "
                f"(as a {self._entries[name].kind})"
            )
        if origin is None:
            origin = getattr(factory, "__module__", None) or "unknown"
        if requires is None:
            declared = getattr(factory, "requires", None)
            requires = None if declared is None else tuple(declared)
        else:
            requires = tuple(requires)
        if requires and name in requires:
            raise PipelineError(f"stage {name!r} cannot require itself")
        entry = StageEntry(
            name=name, kind=kind, factory=factory,
            origin=origin, config_flag=config_flag, requires=requires,
        )
        self._entries[name] = entry
        order = self._order[kind]
        if index is None:
            order.append(name)
        else:
            order.insert(index, name)
        return entry

    # -- switches --------------------------------------------------------------

    def enable(self, name: str) -> None:
        self.get(name).enabled = True

    def disable(self, name: str) -> None:
        self.get(name).enabled = False

    def is_enabled(self, name: str) -> bool:
        return self.get(name).enabled

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> StageEntry:
        entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise PipelineError(
                f"unknown stage {name!r}; registered stages: {known}"
            )
        return entry

    def sources(self) -> list[StageEntry]:
        return [self._entries[n] for n in self._order[SOURCE_KIND]]

    def verifiers(self) -> list[StageEntry]:
        return [self._entries[n] for n in self._order[VERIFIER_KIND]]

    def entries(self) -> list[StageEntry]:
        return self.sources() + self.verifiers()

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def copy(self) -> "StageRegistry":
        """Independent registry with the same entries and switches."""
        duplicate = StageRegistry()
        for kind in (SOURCE_KIND, VERIFIER_KIND):
            for name in self._order[kind]:
                entry = self._entries[name]
                copied = StageEntry(
                    name=entry.name, kind=entry.kind, factory=entry.factory,
                    origin=entry.origin, enabled=entry.enabled,
                    config_flag=entry.config_flag, requires=entry.requires,
                )
                duplicate._entries[name] = copied
                duplicate._order[kind].append(name)
        return duplicate


# -- execution planning --------------------------------------------------------


@dataclass(frozen=True)
class ExecutionPlan:
    """How one build will execute a registry: waves, shards, workers.

    ``source_waves`` are topological levels of the active sources'
    ``requires`` graph: every source in a wave has all of its active
    requirements satisfied by earlier waves, so a wave's members can run
    concurrently.  Registration order is preserved inside each wave and
    is the order results are merged in, which is why a plan executed
    with any worker count produces identical output.

    ``verifiers`` run strictly in order (each consumes the previous
    one's survivors); parallelism there comes from sharding a
    ``per_relation_pure`` verifier over relation chunks instead.
    """

    source_waves: tuple[tuple[StageEntry, ...], ...]
    verifiers: tuple[StageEntry, ...]
    workers: int = 1
    #: Effective execution backend: ``serial`` / ``threads`` /
    #: ``processes``.  A one-worker plan is always ``serial`` whatever
    #: the config asked for — there is nothing to parallelize.
    backend: str = "serial"

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and self.backend != "serial"

    @property
    def n_sources(self) -> int:
        return sum(len(wave) for wave in self.source_waves)

    @property
    def max_wave_width(self) -> int:
        return max((len(wave) for wave in self.source_waves), default=0)

    def describe(self) -> str:
        """Human-readable schedule (the CLI prints this at -v)."""
        lines = [f"workers={self.workers} backend={self.backend}"]
        for i, wave in enumerate(self.source_waves, start=1):
            names = ", ".join(entry.name for entry in wave)
            lines.append(f"wave {i}: {names}")
        names = ", ".join(entry.name for entry in self.verifiers)
        lines.append(f"verifiers: {names or '(none)'}")
        return "\n".join(lines)


def plan_execution(
    registry: StageRegistry,
    config: object,
    workers: int = 1,
    backend: str | None = None,
) -> ExecutionPlan:
    """Compute the wave schedule for *registry* under *config*.

    A requirement naming a disabled or unregistered stage does not
    block scheduling — the dependent source simply sees no output from
    it (``relations_from`` returns ``[]``), exactly as in serial
    execution.  A source whose entry declares no ``requires`` at all is
    given an implicit dependency on every active source ahead of it in
    registration order, preserving the pre-planner serial contract.  A
    genuine ``requires`` cycle among active sources raises
    :class:`~repro.errors.PipelineError`.

    *backend* defaults to ``config.backend`` (``threads`` when the
    config has no such field); a plan with one worker resolves to
    ``serial`` regardless.
    """
    workers = max(1, int(workers))
    if backend is None:
        backend = getattr(config, "backend", "threads")
    if workers <= 1:
        backend = "serial"
    active = [e for e in registry.sources() if e.active(config)]
    active_names = {e.name for e in active}
    requires: dict[str, tuple[str, ...]] = {}
    for position, entry in enumerate(active):
        if entry.requires is None:
            requires[entry.name] = tuple(e.name for e in active[:position])
        else:
            requires[entry.name] = entry.requires
    waves: list[tuple[StageEntry, ...]] = []
    placed: set[str] = set()
    pending = list(active)
    while pending:
        wave = tuple(
            entry for entry in pending
            if all(
                dep in placed or dep not in active_names
                for dep in requires[entry.name]
            )
        )
        if not wave:
            cycle = ", ".join(e.name for e in pending)
            raise PipelineError(
                f"stage dependency cycle among sources: {cycle}"
            )
        waves.append(wave)
        placed.update(entry.name for entry in wave)
        pending = [e for e in pending if e.name not in placed]
    verifiers = tuple(e for e in registry.verifiers() if e.active(config))
    return ExecutionPlan(
        source_waves=tuple(waves), verifiers=verifiers, workers=workers,
        backend=backend,
    )


def default_registry() -> StageRegistry:
    """A fresh registry holding the paper's seven built-in stages.

    Each call returns an independent copy, so disabling a stage for one
    build never leaks into another builder.
    """
    # Local imports: the stage modules annotate against this module, so
    # importing them at module level would be circular.
    from repro.core.generation.neural_gen import AbstractSource
    from repro.core.generation.predicates import InfoboxSource
    from repro.core.generation.separation import BracketSource
    from repro.core.generation.tags import TagSource
    from repro.core.verification.incompatible import IncompatibleVerifier
    from repro.core.verification.ner_filter import NERVerifier
    from repro.core.verification.syntax_rules import SyntaxVerifier

    registry = StageRegistry()
    registry.register_source(
        "bracket", BracketSource, origin="builtin",
        config_flag="enable_bracket",
    )
    registry.register_source(
        "abstract", AbstractSource, origin="builtin",
        config_flag="enable_abstract",
    )
    registry.register_source(
        "infobox", InfoboxSource, origin="builtin",
        config_flag="enable_infobox",
    )
    registry.register_source(
        "tag", TagSource, origin="builtin",
        config_flag="enable_tag",
    )
    registry.register_verifier(
        "syntax", SyntaxVerifier, origin="builtin",
        config_flag="enable_syntax",
    )
    registry.register_verifier(
        "ner", NERVerifier, origin="builtin",
        config_flag="enable_ner",
    )
    registry.register_verifier(
        "incompatible", IncompatibleVerifier, origin="builtin",
        config_flag="enable_incompatible",
    )
    return registry
