"""The paper's contribution: generation + verification framework.

- :mod:`repro.core.generation` — the four per-source extraction
  algorithms (separation / neural generation / predicate discovery /
  direct tag extraction) and candidate merging,
- :mod:`repro.core.verification` — the three heuristic verifiers
  (incompatible concepts / NE hypernym / syntax rules),
- :mod:`repro.core.stages` — the pluggable stage architecture: the
  :class:`~repro.core.stages.GenerationSource` and
  :class:`~repro.core.stages.Verifier` protocols, the named/ordered
  :class:`~repro.core.stages.StageRegistry` and the shared
  :class:`~repro.core.stages.BuildContext`,
- :mod:`repro.core.pipeline` — :class:`CNProbaseBuilder`, the thin
  registry-driven build orchestrator (Figure 2).
"""

from repro.core.pipeline import (
    BuildResult,
    CNProbaseBuilder,
    PipelineConfig,
    build_cn_probase,
)
from repro.core.stages import (
    BuildContext,
    GenerationSource,
    StageRecord,
    StageRegistry,
    StageTrace,
    Verifier,
    default_registry,
)

__all__ = [
    "BuildContext",
    "BuildResult",
    "CNProbaseBuilder",
    "GenerationSource",
    "PipelineConfig",
    "StageRecord",
    "StageRegistry",
    "StageTrace",
    "Verifier",
    "build_cn_probase",
    "default_registry",
]
