"""The paper's contribution: generation + verification framework.

- :mod:`repro.core.generation` — the four per-source extraction
  algorithms (separation / neural generation / predicate discovery /
  direct tag extraction) and candidate merging,
- :mod:`repro.core.verification` — the three heuristic verifiers
  (incompatible concepts / NE hypernym / syntax rules),
- :mod:`repro.core.pipeline` — :class:`CNProbaseBuilder`, the end-to-end
  build orchestrator (Figure 2).
"""

from repro.core.pipeline import BuildResult, CNProbaseBuilder, PipelineConfig, build_cn_probase

__all__ = [
    "BuildResult",
    "CNProbaseBuilder",
    "PipelineConfig",
    "build_cn_probase",
]
