"""The generation + verification build pipeline (Figure 2).

``CNProbaseBuilder.build(dump)`` is a thin driver over a
:class:`~repro.core.stages.StageRegistry`:

1. prepare the shared :class:`~repro.core.stages.BuildContext` — lexicon
   harvesting (titles/tags/aliases extend the base lexicon, the way real
   pipelines feed encyclopedia titles to jieba as a user dict), PMI
   statistics over the dump's own text corpus, segmenter/tagger/NER,
2. run every registered generation source in order (bracket separation,
   neural generation, predicate discovery, tag extraction by default)
   into the merged candidate pool,
3. identify the concept layer,
4. run every registered verifier in order (disjunctive: any veto removes
   the candidate),
5. assemble the taxonomy, index mentions and break concept cycles.

Per-stage wall-clock and candidate counts are recorded in a
:class:`~repro.core.stages.StageTrace` on the result.  Stages remain
individually switchable through :class:`PipelineConfig` (what the
ablation benchmarks drive) or through the registry's enable/disable
switches; custom stages register through
:mod:`repro.core.stages` without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.core.generation.merge import CandidatePool, PoolStats
from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.generation.predicates import DiscoveryResult
from repro.core.stages import (
    DRIVER_KIND,
    SOURCE_KIND,
    VERIFIER_KIND,
    BuildContext,
    StageRecord,
    StageRegistry,
    StageTrace,
    default_registry,
)
from repro.encyclopedia.model import EncyclopediaDump
from repro.errors import PipelineError
from repro.neural.training import TrainingReport
from repro.nlp.lexicon import Lexicon
from repro.nlp.ner import NamedEntityRecognizer
from repro.nlp.pmi import PMIStatistics
from repro.nlp.pos import POSTagger
from repro.nlp.segmentation import Segmenter
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@dataclass
class PipelineConfig:
    """Switches and hyper-parameters for one build."""

    # generation sources
    enable_bracket: bool = True
    enable_abstract: bool = True
    enable_infobox: bool = True
    enable_tag: bool = True
    # verification heuristics
    enable_incompatible: bool = True
    enable_ner: bool = True
    enable_syntax: bool = True
    # component parameters
    neural: NeuralGenConfig = field(default_factory=NeuralGenConfig)
    ne_threshold: float = 0.55
    predicate_min_aligned: int = 2
    predicate_min_support: float = 0.28
    predicate_max_selected: int = 12
    agglomerative_separation: bool = False
    # neural extraction can be capped for wall-clock control; None = all
    max_generation_pages: int | None = None
    harvest_lexicon: bool = True


@dataclass
class BuildResult:
    """Everything a build produces, for evaluation and reporting."""

    taxonomy: Taxonomy
    pool_stats: PoolStats
    per_source_relations: dict[str, list[IsARelation]]
    discovery: DiscoveryResult | None
    training_report: TrainingReport | None
    removed_by: dict[str, list[IsARelation]]
    reclassified: int
    cycle_edges: list[tuple[str, str]]
    titles: dict[str, str]
    stage_trace: StageTrace = field(default_factory=StageTrace)

    @property
    def n_removed(self) -> int:
        return sum(len(v) for v in self.removed_by.values())


class CNProbaseBuilder:
    """End-to-end builder of a CN-Probase-style taxonomy.

    The builder owns a :class:`StageRegistry` (its own copy of
    :func:`default_registry` unless one is injected), so callers can
    register custom stages or flip switches per builder without
    affecting other builds.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        lexicon: Lexicon | None = None,
        recognizer: NamedEntityRecognizer | None = None,
        registry: StageRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        self.registry = registry if registry is not None else default_registry()
        self._external_lexicon = lexicon
        self._external_recognizer = recognizer

    # -- pipeline --------------------------------------------------------------

    def build(self, dump: EncyclopediaDump) -> BuildResult:
        if len(dump) == 0:
            raise PipelineError("cannot build a taxonomy from an empty dump")
        started = perf_counter()
        trace = StageTrace()

        context = self._prepare_context(dump, trace)
        pool = CandidatePool()

        # generation: every registered source, in order.
        for entry in self.registry.sources():
            if not entry.active(self.config):
                trace.add(StageRecord(entry.name, SOURCE_KIND, 0.0, 0, ran=False))
                continue
            stage_started = perf_counter()
            relations = entry.factory().generate(context)
            elapsed = perf_counter() - stage_started
            if relations is None:  # preconditions unmet (e.g. no priors)
                trace.add(StageRecord(
                    entry.name, SOURCE_KIND, elapsed, 0, ran=False
                ))
                continue
            context.per_source[entry.name] = relations
            pool.add(relations)
            trace.add(StageRecord(entry.name, SOURCE_KIND, elapsed, len(relations)))

        # merge + concept-layer identification.
        merge_started = perf_counter()
        reclassified = pool.reclassify_concept_pages(dump)
        pool_stats = pool.stats()
        relations = pool.relations()
        trace.add(StageRecord(
            "merge", DRIVER_KIND, perf_counter() - merge_started, len(relations)
        ))

        # verification: every registered verifier, in order (disjunctive
        # veto, applied in sequence).
        removed_by: dict[str, list[IsARelation]] = {}
        for entry in self.registry.verifiers():
            if not entry.active(self.config):
                trace.add(StageRecord(entry.name, VERIFIER_KIND, 0.0, 0, ran=False))
                continue
            stage_started = perf_counter()
            decision = entry.factory().verify(context, relations)
            elapsed = perf_counter() - stage_started
            removed_by[entry.name] = decision.removed
            relations = decision.kept
            trace.add(StageRecord(
                entry.name, VERIFIER_KIND, elapsed, len(decision.removed)
            ))

        # taxonomy assembly.
        assemble_started = perf_counter()
        taxonomy, cycle_edges = self._assemble(dump, relations, context.titles)
        trace.add(StageRecord(
            "assemble", DRIVER_KIND, perf_counter() - assemble_started,
            len(taxonomy),
        ))
        trace.total_seconds = perf_counter() - started

        return BuildResult(
            taxonomy=taxonomy,
            pool_stats=pool_stats,
            per_source_relations=context.per_source,
            discovery=context.discovery,
            training_report=context.training_report,
            removed_by=removed_by,
            reclassified=reclassified,
            cycle_edges=cycle_edges,
            titles=context.titles,
            stage_trace=trace,
        )

    # -- helpers ------------------------------------------------------------------

    def _prepare_context(
        self, dump: EncyclopediaDump, trace: StageTrace
    ) -> BuildContext:
        """Derive the shared NLP resources every stage reads."""
        started = perf_counter()
        lexicon = self._prepare_lexicon(dump)
        segmenter = Segmenter(lexicon)
        tagger = POSTagger(lexicon)
        recognizer = (
            self._external_recognizer
            if self._external_recognizer is not None
            else NamedEntityRecognizer(lexicon)
        )
        corpus = segmenter.segment_corpus(dump.text_corpus())
        pmi = PMIStatistics()
        pmi.add_corpus(corpus)
        titles = {page.page_id: page.title for page in dump}
        trace.add(StageRecord(
            "resources", DRIVER_KIND, perf_counter() - started, len(titles)
        ))
        return BuildContext(
            dump=dump,
            config=self.config,
            lexicon=lexicon,
            segmenter=segmenter,
            tagger=tagger,
            recognizer=recognizer,
            pmi=pmi,
            corpus=corpus,
            titles=titles,
        )

    @staticmethod
    def _assemble(
        dump: EncyclopediaDump,
        relations: list[IsARelation],
        titles: dict[str, str],
    ) -> tuple[Taxonomy, list[tuple[str, str]]]:
        taxonomy = Taxonomy()
        aliases = _collect_aliases(dump)
        for relation in relations:
            if relation.hyponym_kind == "entity":
                page_title = titles.get(relation.hyponym)
                if page_title is None:
                    continue
                taxonomy.add_entity(
                    Entity(
                        page_id=relation.hyponym,
                        name=page_title,
                        aliases=aliases.get(relation.hyponym, ()),
                    )
                )
            taxonomy.add_relation(relation)
        return taxonomy, taxonomy.finalize()

    def _prepare_lexicon(self, dump: EncyclopediaDump) -> Lexicon:
        if self._external_lexicon is not None:
            return self._external_lexicon
        if self.config.harvest_lexicon:
            return harvest_lexicon(dump)
        return Lexicon.base()


def harvest_lexicon(dump: EncyclopediaDump) -> Lexicon:
    """Base lexicon extended with surfaces harvested from the dump.

    Titles, tags and aliases go in the way real pipelines feed
    encyclopedia titles to jieba as a user dictionary.
    """
    lexicon = Lexicon.base()
    for page in dump:
        lexicon.add(page.title, 300, "n")
        for tag in page.tags:
            if tag and len(tag) <= 8:
                lexicon.add(tag, 200, "n")
        for alias in _page_aliases(page):
            lexicon.add(alias, 150, "n")
    return lexicon


def _page_aliases(page) -> tuple[str, ...]:
    return tuple(v for v in page.infobox_values("别名") if v)


def _collect_aliases(dump: EncyclopediaDump) -> dict[str, tuple[str, ...]]:
    return {
        page.page_id: _page_aliases(page)
        for page in dump
        if any(t.predicate == "别名" for t in page.infobox)
    }


def build_cn_probase(
    dump: EncyclopediaDump,
    config: PipelineConfig | None = None,
    lexicon: Lexicon | None = None,
    registry: StageRegistry | None = None,
) -> BuildResult:
    """One-call convenience wrapper around :class:`CNProbaseBuilder`."""
    return CNProbaseBuilder(
        config=config, lexicon=lexicon, registry=registry
    ).build(dump)
