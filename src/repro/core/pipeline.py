"""The generation + verification build pipeline (Figure 2).

``CNProbaseBuilder.build(dump)`` is a thin driver over a
:class:`~repro.core.stages.StageRegistry`:

1. prepare the shared :class:`~repro.core.stages.BuildContext` — lexicon
   harvesting (titles/tags/aliases extend the base lexicon, the way real
   pipelines feed encyclopedia titles to jieba as a user dict), PMI
   statistics over the dump's own text corpus, segmenter/tagger/NER,
2. run every registered generation source (bracket separation, neural
   generation, predicate discovery, tag extraction by default) into the
   merged candidate pool,
3. identify the concept layer,
4. run every registered verifier in order (disjunctive: any veto removes
   the candidate),
5. assemble the taxonomy, index mentions and break concept cycles.

Execution follows an :class:`~repro.core.stages.ExecutionPlan`: with
``PipelineConfig.workers > 1`` independent sources run concurrently in
dependency waves and ``per_relation_pure`` verifiers are sharded over
relation chunks, all via ``concurrent.futures`` threads.  Results are
merged in registration order regardless of completion order, so a
parallel build's taxonomy is byte-identical to the serial one's.

Shared resource preparation is cached in a :class:`ResourceCache` keyed
on the dump's content fingerprint plus the resource-relevant slice of
the config: rebuilding on an unchanged dump skips lexicon harvesting,
corpus segmentation and PMI recounting entirely (``cache_hit`` on the
``resources`` trace record says when).

Per-stage wall-clock, candidate counts, worker counts and cache hits
are recorded in a :class:`~repro.core.stages.StageTrace` on the result.
Stages remain individually switchable through :class:`PipelineConfig`
(what the ablation benchmarks drive) or through the registry's
enable/disable switches; custom stages register through
:mod:`repro.core.stages` without touching this module.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.generation.merge import CandidatePool, PoolStats
from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.generation.predicates import DiscoveryResult
from repro.core.stages import (
    DRIVER_KIND,
    SOURCE_KIND,
    VERIFIER_KIND,
    BuildContext,
    ExecutionPlan,
    StageEntry,
    StageRecord,
    StageRegistry,
    StageTrace,
    default_registry,
    plan_execution,
)
from repro.core.verification.incompatible import FilterDecision
from repro.encyclopedia.model import EncyclopediaDump
from repro.errors import PipelineError
from repro.neural.training import TrainingReport
from repro.nlp.lexicon import Lexicon
from repro.nlp.ner import NamedEntityRecognizer
from repro.nlp.pmi import PMIStatistics
from repro.nlp.pos import POSTagger
from repro.nlp.segmentation import Segmenter
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@dataclass
class PipelineConfig:
    """Switches and hyper-parameters for one build."""

    # generation sources
    enable_bracket: bool = True
    enable_abstract: bool = True
    enable_infobox: bool = True
    enable_tag: bool = True
    # verification heuristics
    enable_incompatible: bool = True
    enable_ner: bool = True
    enable_syntax: bool = True
    # component parameters
    neural: NeuralGenConfig = field(default_factory=NeuralGenConfig)
    ne_threshold: float = 0.55
    predicate_min_aligned: int = 2
    predicate_min_support: float = 0.28
    predicate_max_selected: int = 12
    agglomerative_separation: bool = False
    # neural extraction can be capped for wall-clock control; None = all
    max_generation_pages: int | None = None
    harvest_lexicon: bool = True
    # execution: worker threads for source waves and verifier shards
    # (1 = the serial pipeline, bit-for-bit the default behaviour)
    workers: int = 1
    # consult the builder's ResourceCache for the shared NLP resources
    resource_cache: bool = True


@dataclass
class SharedResources:
    """The expensive once-per-build derivations a :class:`ResourceCache`
    can replay: everything in :class:`BuildContext` that depends only on
    the dump (and the resource slice of the config), not on stages."""

    lexicon: Lexicon
    segmenter: Segmenter
    tagger: POSTagger
    recognizer: NamedEntityRecognizer
    pmi: PMIStatistics
    corpus: list[list[str]]
    titles: dict[str, str]


class ResourceCache:
    """Bounded LRU of :class:`SharedResources`, keyed by dump + config.

    The key is ``(dump.fingerprint(), resource-config signature)``: a
    nightly rebuild on an unchanged dump skips lexicon harvesting,
    corpus segmentation and PMI recounting — the dominant fixed cost of
    a build.  Entries are treated as immutable by every stage (stages
    only read the shared resources), so sharing them across builds is
    safe.  Thread-safe; the default instance is shared by all builders.

    An entry pins the whole segmented corpus of its dump, so the
    default capacity is one — the rebuild-on-unchanged-dump case needs
    exactly the latest entry, and anything larger would keep a full
    superseded corpus resident.  Pass a bigger *maxsize* when a process
    really does alternate between dumps.
    """

    def __init__(self, maxsize: int = 1) -> None:
        if maxsize < 1:
            raise PipelineError(f"cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[tuple, SharedResources] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> SharedResources | None:
        with self._lock:
            resources = self._entries.get(key)
            if resources is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return resources

    def put(self, key: tuple, resources: SharedResources) -> None:
        with self._lock:
            self._entries[key] = resources
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide default cache: nightly-style repeated builds through any
#: builder hit the same warm entries.
DEFAULT_RESOURCE_CACHE = ResourceCache()


@dataclass
class BuildResult:
    """Everything a build produces, for evaluation and reporting."""

    taxonomy: Taxonomy
    pool_stats: PoolStats
    per_source_relations: dict[str, list[IsARelation]]
    discovery: DiscoveryResult | None
    training_report: TrainingReport | None
    removed_by: dict[str, list[IsARelation]]
    reclassified: int
    cycle_edges: list[tuple[str, str]]
    titles: dict[str, str]
    stage_trace: StageTrace = field(default_factory=StageTrace)

    @property
    def n_removed(self) -> int:
        return sum(len(v) for v in self.removed_by.values())


class CNProbaseBuilder:
    """End-to-end builder of a CN-Probase-style taxonomy.

    The builder owns a :class:`StageRegistry` (its own copy of
    :func:`default_registry` unless one is injected), so callers can
    register custom stages or flip switches per builder without
    affecting other builds.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        lexicon: Lexicon | None = None,
        recognizer: NamedEntityRecognizer | None = None,
        registry: StageRegistry | None = None,
        resource_cache: ResourceCache | None = None,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        if self.config.workers < 1:
            raise PipelineError(
                f"workers must be >= 1, got {self.config.workers}"
            )
        self.registry = registry if registry is not None else default_registry()
        self._external_lexicon = lexicon
        self._external_recognizer = recognizer
        self._resource_cache = (
            resource_cache if resource_cache is not None
            else DEFAULT_RESOURCE_CACHE
        )

    # -- pipeline --------------------------------------------------------------

    def plan(self) -> ExecutionPlan:
        """The wave/shard schedule the next :meth:`build` will follow."""
        return plan_execution(self.registry, self.config, self.config.workers)

    def build(self, dump: EncyclopediaDump) -> BuildResult:
        if len(dump) == 0:
            raise PipelineError("cannot build a taxonomy from an empty dump")
        started = perf_counter()
        trace = StageTrace()

        context = self._prepare_context(dump, trace)
        pool = CandidatePool()
        plan = self.plan()

        # generation: dependency waves; results merged in registration
        # order so every worker count yields the identical pool.
        source_records = self._run_sources(plan, context, pool)
        for entry in self.registry.sources():
            record = source_records.get(entry.name)
            if record is None:  # disabled by a switch
                record = StageRecord(entry.name, SOURCE_KIND, 0.0, 0, ran=False)
            trace.add(record)

        # merge + concept-layer identification.
        merge_started = perf_counter()
        reclassified = pool.reclassify_concept_pages(dump)
        pool_stats = pool.stats()
        relations = pool.relations()
        trace.add(StageRecord(
            "merge", DRIVER_KIND, perf_counter() - merge_started, len(relations)
        ))

        # verification: every registered verifier, in order (disjunctive
        # veto, applied in sequence); per-relation-pure verifiers are
        # sharded over relation chunks.
        removed_by: dict[str, list[IsARelation]] = {}
        for entry in self.registry.verifiers():
            if not entry.active(self.config):
                trace.add(StageRecord(entry.name, VERIFIER_KIND, 0.0, 0, ran=False))
                continue
            stage_started = perf_counter()
            decision, n_workers = self._run_verifier(
                entry, context, relations, plan.workers
            )
            elapsed = perf_counter() - stage_started
            removed_by[entry.name] = decision.removed
            relations = decision.kept
            trace.add(StageRecord(
                entry.name, VERIFIER_KIND, elapsed, len(decision.removed),
                workers=n_workers,
            ))

        # taxonomy assembly.
        assemble_started = perf_counter()
        taxonomy, cycle_edges = self._assemble(dump, relations, context.titles)
        trace.add(StageRecord(
            "assemble", DRIVER_KIND, perf_counter() - assemble_started,
            len(taxonomy),
        ))
        trace.total_seconds = perf_counter() - started

        return BuildResult(
            taxonomy=taxonomy,
            pool_stats=pool_stats,
            per_source_relations=context.per_source,
            discovery=context.discovery,
            training_report=context.training_report,
            removed_by=removed_by,
            reclassified=reclassified,
            cycle_edges=cycle_edges,
            titles=context.titles,
            stage_trace=trace,
        )

    # -- execution -----------------------------------------------------------------

    def _run_sources(
        self, plan: ExecutionPlan, context: BuildContext, pool: CandidatePool
    ) -> dict[str, StageRecord]:
        """Run every wave; merge results in registration order.

        ``context.per_source`` is filled as each wave completes (later
        waves read earlier output through ``relations_from``), but the
        candidate pool is only fed after all waves, strictly in
        registration order — wave grouping moves dependency-free
        sources ahead of dependent ones, and neither that nor thread
        completion order may leak into the pool's first-seen-source
        dedup or ``Taxonomy.save``'s insertion order.  A ``workers=N``
        build therefore stays bit-for-bit equal to the serial pipeline.
        """
        records: dict[str, StageRecord] = {}
        for wave in plan.source_waves:
            wave_workers = min(plan.workers, len(wave)) if plan.parallel else 1
            if wave_workers > 1:
                with ThreadPoolExecutor(
                    max_workers=wave_workers,
                    thread_name_prefix="cn-probase-source",
                ) as executor:
                    outcomes = list(executor.map(
                        lambda entry: self._run_source(entry, context), wave
                    ))
            else:
                outcomes = [self._run_source(entry, context) for entry in wave]
            for entry, (relations, seconds) in zip(wave, outcomes):
                if relations is None:  # preconditions unmet (e.g. no priors)
                    records[entry.name] = StageRecord(
                        entry.name, SOURCE_KIND, seconds, 0, ran=False,
                        workers=wave_workers,
                    )
                    continue
                context.per_source[entry.name] = relations
                records[entry.name] = StageRecord(
                    entry.name, SOURCE_KIND, seconds, len(relations),
                    workers=wave_workers,
                )
        ordered = {
            entry.name: context.per_source[entry.name]
            for entry in self.registry.sources()
            if entry.name in context.per_source
        }
        context.per_source.clear()
        context.per_source.update(ordered)
        for relations in ordered.values():
            pool.add(relations)
        return records

    @staticmethod
    def _run_source(
        entry: StageEntry, context: BuildContext
    ) -> tuple[list[IsARelation] | None, float]:
        stage_started = perf_counter()
        relations = entry.factory().generate(context)
        return relations, perf_counter() - stage_started

    @staticmethod
    def _run_verifier(
        entry: StageEntry,
        context: BuildContext,
        relations: list[IsARelation],
        workers: int,
    ) -> tuple[FilterDecision, int]:
        """One verifier pass, sharded when the stage declares purity.

        Shards are contiguous chunks and their decisions are concatenated
        in chunk order, so kept/removed keep the exact serial ordering.
        Each shard verifies through a fresh stage instance — per-instance
        state (e.g. rule counters) never crosses threads.
        """
        shardable = bool(getattr(entry.factory, "per_relation_pure", False))
        n_shards = min(workers, len(relations)) if shardable else 1
        if n_shards <= 1:
            return entry.factory().verify(context, relations), 1
        chunks = _split_chunks(relations, n_shards)
        with ThreadPoolExecutor(
            max_workers=len(chunks), thread_name_prefix="cn-probase-verify"
        ) as executor:
            decisions = list(executor.map(
                lambda chunk: entry.factory().verify(context, chunk), chunks
            ))
        kept: list[IsARelation] = []
        removed: list[IsARelation] = []
        for decision in decisions:
            kept.extend(decision.kept)
            removed.extend(decision.removed)
        return FilterDecision(kept=kept, removed=removed), len(chunks)

    # -- helpers ------------------------------------------------------------------

    def _resource_signature(self) -> tuple:
        """The resource-relevant slice of the config (the "config hash").

        Shared resources depend on nothing else in :class:`PipelineConfig`:
        every other knob only affects stages, which consume the resources
        read-only.
        """
        return (self.config.harvest_lexicon,)

    def _prepare_context(
        self, dump: EncyclopediaDump, trace: StageTrace
    ) -> BuildContext:
        """Derive (or replay) the shared NLP resources every stage reads."""
        started = perf_counter()
        cacheable = (
            self.config.resource_cache
            and self._external_lexicon is None
            and self._external_recognizer is None
        )
        resources = None
        cache_key: tuple | None = None
        if cacheable:
            cache_key = (dump.fingerprint(), self._resource_signature())
            resources = self._resource_cache.get(cache_key)
        cache_hit = resources is not None
        if resources is None:
            resources = self._build_resources(dump)
            if cacheable and cache_key is not None:
                self._resource_cache.put(cache_key, resources)
        trace.add(StageRecord(
            "resources", DRIVER_KIND, perf_counter() - started,
            len(resources.titles), cache_hit=cache_hit,
        ))
        return BuildContext(
            dump=dump,
            config=self.config,
            lexicon=resources.lexicon,
            segmenter=resources.segmenter,
            tagger=resources.tagger,
            recognizer=resources.recognizer,
            pmi=resources.pmi,
            corpus=resources.corpus,
            titles=resources.titles,
        )

    def _build_resources(self, dump: EncyclopediaDump) -> SharedResources:
        lexicon = self._prepare_lexicon(dump)
        segmenter = Segmenter(lexicon)
        tagger = POSTagger(lexicon)
        recognizer = (
            self._external_recognizer
            if self._external_recognizer is not None
            else NamedEntityRecognizer(lexicon)
        )
        corpus = segmenter.segment_corpus(dump.text_corpus())
        pmi = PMIStatistics()
        pmi.add_corpus(corpus)
        titles = {page.page_id: page.title for page in dump}
        return SharedResources(
            lexicon=lexicon,
            segmenter=segmenter,
            tagger=tagger,
            recognizer=recognizer,
            pmi=pmi,
            corpus=corpus,
            titles=titles,
        )

    @staticmethod
    def _assemble(
        dump: EncyclopediaDump,
        relations: list[IsARelation],
        titles: dict[str, str],
    ) -> tuple[Taxonomy, list[tuple[str, str]]]:
        taxonomy = Taxonomy()
        aliases = _collect_aliases(dump)
        for relation in relations:
            if relation.hyponym_kind == "entity":
                page_title = titles.get(relation.hyponym)
                if page_title is None:
                    continue
                taxonomy.add_entity(
                    Entity(
                        page_id=relation.hyponym,
                        name=page_title,
                        aliases=aliases.get(relation.hyponym, ()),
                    )
                )
            taxonomy.add_relation(relation)
        return taxonomy, taxonomy.finalize()

    def _prepare_lexicon(self, dump: EncyclopediaDump) -> Lexicon:
        if self._external_lexicon is not None:
            return self._external_lexicon
        if self.config.harvest_lexicon:
            return harvest_lexicon(dump)
        return Lexicon.base()


def _split_chunks(items: list, n: int) -> list[list]:
    """Split *items* into at most *n* contiguous chunks of near-equal size."""
    size, extra = divmod(len(items), n)
    chunks: list[list] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def harvest_lexicon(dump: EncyclopediaDump) -> Lexicon:
    """Base lexicon extended with surfaces harvested from the dump.

    Titles, tags and aliases go in the way real pipelines feed
    encyclopedia titles to jieba as a user dictionary.
    """
    lexicon = Lexicon.base()
    for page in dump:
        lexicon.add(page.title, 300, "n")
        for tag in page.tags:
            if tag and len(tag) <= 8:
                lexicon.add(tag, 200, "n")
        for alias in _page_aliases(page):
            lexicon.add(alias, 150, "n")
    return lexicon


def _page_aliases(page) -> tuple[str, ...]:
    return tuple(v for v in page.infobox_values("别名") if v)


def _collect_aliases(dump: EncyclopediaDump) -> dict[str, tuple[str, ...]]:
    return {
        page.page_id: _page_aliases(page)
        for page in dump
        if any(t.predicate == "别名" for t in page.infobox)
    }


def build_cn_probase(
    dump: EncyclopediaDump,
    config: PipelineConfig | None = None,
    lexicon: Lexicon | None = None,
    registry: StageRegistry | None = None,
) -> BuildResult:
    """One-call convenience wrapper around :class:`CNProbaseBuilder`."""
    return CNProbaseBuilder(
        config=config, lexicon=lexicon, registry=registry
    ).build(dump)
