"""The generation + verification build pipeline (Figure 2).

``CNProbaseBuilder.build(dump)`` runs the complete paper flow:

1. lexicon harvesting (titles/tags/aliases extend the base lexicon, the
   way real pipelines feed encyclopedia titles to jieba as a user dict),
2. PMI statistics over the dump's own text corpus,
3. the four generation sources — bracket separation, neural generation
   (distant-supervised CopyNet), predicate discovery over the infobox,
   direct tag extraction,
4. candidate merging + concept-layer identification,
5. the three verifiers (disjunctive: any veto removes the candidate),
6. taxonomy assembly, mention indexing and concept-cycle breaking.

Every stage is individually switchable through :class:`PipelineConfig`,
which is what the ablation benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generation.merge import CandidatePool, PoolStats
from repro.core.generation.neural_gen import NeuralGenConfig, NeuralGenerator
from repro.core.generation.predicates import DiscoveryResult, PredicateDiscovery
from repro.core.generation.separation import BracketExtractor
from repro.core.generation.tags import TagExtractor
from repro.core.verification.incompatible import IncompatibleConceptFilter
from repro.core.verification.ner_filter import NEHypernymFilter
from repro.core.verification.syntax_rules import SyntaxRuleFilter
from repro.encyclopedia.model import EncyclopediaDump
from repro.errors import PipelineError
from repro.neural.training import TrainingReport
from repro.nlp.lexicon import Lexicon
from repro.nlp.ner import NamedEntityRecognizer
from repro.nlp.pmi import PMIStatistics
from repro.nlp.pos import POSTagger
from repro.nlp.segmentation import Segmenter
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@dataclass
class PipelineConfig:
    """Switches and hyper-parameters for one build."""

    # generation sources
    enable_bracket: bool = True
    enable_abstract: bool = True
    enable_infobox: bool = True
    enable_tag: bool = True
    # verification heuristics
    enable_incompatible: bool = True
    enable_ner: bool = True
    enable_syntax: bool = True
    # component parameters
    neural: NeuralGenConfig = field(default_factory=NeuralGenConfig)
    ne_threshold: float = 0.55
    predicate_min_aligned: int = 2
    predicate_min_support: float = 0.28
    predicate_max_selected: int = 12
    agglomerative_separation: bool = False
    # neural extraction can be capped for wall-clock control; None = all
    max_generation_pages: int | None = None
    harvest_lexicon: bool = True


@dataclass
class BuildResult:
    """Everything a build produces, for evaluation and reporting."""

    taxonomy: Taxonomy
    pool_stats: PoolStats
    per_source_relations: dict[str, list[IsARelation]]
    discovery: DiscoveryResult | None
    training_report: TrainingReport | None
    removed_by: dict[str, list[IsARelation]]
    reclassified: int
    cycle_edges: list[tuple[str, str]]
    titles: dict[str, str]

    @property
    def n_removed(self) -> int:
        return sum(len(v) for v in self.removed_by.values())


class CNProbaseBuilder:
    """End-to-end builder of a CN-Probase-style taxonomy."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        lexicon: Lexicon | None = None,
        recognizer: NamedEntityRecognizer | None = None,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        self._external_lexicon = lexicon
        self._external_recognizer = recognizer

    # -- pipeline --------------------------------------------------------------

    def build(self, dump: EncyclopediaDump) -> BuildResult:
        if len(dump) == 0:
            raise PipelineError("cannot build a taxonomy from an empty dump")
        config = self.config

        lexicon = self._prepare_lexicon(dump)
        segmenter = Segmenter(lexicon)
        tagger = POSTagger(lexicon)
        recognizer = (
            self._external_recognizer
            if self._external_recognizer is not None
            else NamedEntityRecognizer(lexicon)
        )
        corpus = segmenter.segment_corpus(dump.text_corpus())
        pmi = PMIStatistics()
        pmi.add_corpus(corpus)

        titles = {page.page_id: page.title for page in dump}
        pool = CandidatePool()
        per_source: dict[str, list[IsARelation]] = {}

        # 1) bracket — also feeds distant supervision, so run it first.
        bracket_relations: list[IsARelation] = []
        if config.enable_bracket:
            bracket = BracketExtractor(
                segmenter, pmi, tagger,
                agglomerative=config.agglomerative_separation,
            )
            bracket_relations = bracket.extract(dump)
            per_source["bracket"] = bracket_relations
            pool.add(bracket_relations)

        # 2) abstract (neural generation).
        training_report: TrainingReport | None = None
        if config.enable_abstract and bracket_relations:
            generator = NeuralGenerator(segmenter, config.neural)
            dataset = generator.build_dataset(dump, bracket_relations)
            if len(dataset) >= config.neural.min_train_examples:
                training_report = generator.train(dataset)
                pages = list(dump)
                if config.max_generation_pages is not None:
                    pages = pages[: config.max_generation_pages]
                abstract_relations = generator.extract(pages)
                per_source["abstract"] = abstract_relations
                pool.add(abstract_relations)

        # 3) infobox (predicate discovery).
        discovery: DiscoveryResult | None = None
        if config.enable_infobox and bracket_relations:
            discoverer = PredicateDiscovery(
                min_aligned=config.predicate_min_aligned,
                min_support=config.predicate_min_support,
                max_selected=config.predicate_max_selected,
            )
            discovery = discoverer.discover(dump, bracket_relations)
            infobox_relations = discoverer.extract(dump, discovery.selected)
            per_source["infobox"] = infobox_relations
            pool.add(infobox_relations)

        # 4) tag (direct extraction).
        if config.enable_tag:
            tag_relations = TagExtractor().extract(dump)
            per_source["tag"] = tag_relations
            pool.add(tag_relations)

        reclassified = pool.reclassify_concept_pages(dump)
        pool_stats = pool.stats()
        relations = pool.relations()

        # 5) verification (disjunctive veto, applied in sequence).
        removed_by: dict[str, list[IsARelation]] = {}
        if config.enable_syntax:
            syntax = SyntaxRuleFilter(segmenter, tagger)
            decision = syntax.filter(relations, titles)
            removed_by["syntax"] = decision.removed
            relations = decision.kept
        if config.enable_ner:
            ner = NEHypernymFilter(recognizer, threshold=config.ne_threshold)
            ner.fit(corpus, relations, titles)
            decision = ner.filter(relations)
            removed_by["ner"] = decision.removed
            relations = decision.kept
        if config.enable_incompatible:
            incompatible = IncompatibleConceptFilter()
            incompatible.fit(relations, dump)
            decision = incompatible.filter(relations)
            removed_by["incompatible"] = decision.removed
            relations = decision.kept

        # 6) taxonomy assembly.
        taxonomy = Taxonomy()
        aliases = _collect_aliases(dump)
        for relation in relations:
            if relation.hyponym_kind == "entity":
                page_title = titles.get(relation.hyponym)
                if page_title is None:
                    continue
                taxonomy.add_entity(
                    Entity(
                        page_id=relation.hyponym,
                        name=page_title,
                        aliases=aliases.get(relation.hyponym, ()),
                    )
                )
            taxonomy.add_relation(relation)
        cycle_edges = taxonomy.finalize()

        return BuildResult(
            taxonomy=taxonomy,
            pool_stats=pool_stats,
            per_source_relations=per_source,
            discovery=discovery,
            training_report=training_report,
            removed_by=removed_by,
            reclassified=reclassified,
            cycle_edges=cycle_edges,
            titles=titles,
        )

    # -- helpers ------------------------------------------------------------------

    def _prepare_lexicon(self, dump: EncyclopediaDump) -> Lexicon:
        if self._external_lexicon is not None:
            return self._external_lexicon
        if self.config.harvest_lexicon:
            return harvest_lexicon(dump)
        return Lexicon.base()


def harvest_lexicon(dump: EncyclopediaDump) -> Lexicon:
    """Base lexicon extended with surfaces harvested from the dump.

    Titles, tags and aliases go in the way real pipelines feed
    encyclopedia titles to jieba as a user dictionary.
    """
    lexicon = Lexicon.base()
    for page in dump:
        lexicon.add(page.title, 300, "n")
        for tag in page.tags:
            if tag and len(tag) <= 8:
                lexicon.add(tag, 200, "n")
        for alias in _page_aliases(page):
            lexicon.add(alias, 150, "n")
    return lexicon


def _page_aliases(page) -> tuple[str, ...]:
    return tuple(v for v in page.infobox_values("别名") if v)


def _collect_aliases(dump: EncyclopediaDump) -> dict[str, tuple[str, ...]]:
    return {
        page.page_id: _page_aliases(page)
        for page in dump
        if any(t.predicate == "别名" for t in page.infobox)
    }


def build_cn_probase(
    dump: EncyclopediaDump,
    config: PipelineConfig | None = None,
    lexicon: Lexicon | None = None,
) -> BuildResult:
    """One-call convenience wrapper around :class:`CNProbaseBuilder`."""
    return CNProbaseBuilder(config=config, lexicon=lexicon).build(dump)
