"""The generation + verification build pipeline (Figure 2).

``CNProbaseBuilder.build(dump)`` is a thin driver over a
:class:`~repro.core.stages.StageRegistry`:

1. prepare the shared :class:`~repro.core.stages.BuildContext` — lexicon
   harvesting (titles/tags/aliases extend the base lexicon, the way real
   pipelines feed encyclopedia titles to jieba as a user dict), PMI
   statistics over the dump's own text corpus, segmenter/tagger/NER,
2. run every registered generation source (bracket separation, neural
   generation, predicate discovery, tag extraction by default) into the
   merged candidate pool,
3. identify the concept layer,
4. run every registered verifier in order (disjunctive: any veto removes
   the candidate),
5. assemble the taxonomy, index mentions and break concept cycles.

Execution follows an :class:`~repro.core.stages.ExecutionPlan`: with
``PipelineConfig.workers > 1`` independent sources run concurrently in
dependency waves and ``per_relation_pure`` verifiers are sharded over
relation chunks, on the :class:`~repro.core.executors.Executor` backend
``PipelineConfig.backend`` selects — ``serial``, ``threads``, or
``processes`` (real cores via a ``ProcessPoolExecutor`` primed with a
picklable :class:`~repro.core.executors.WorkerContext`; corpus
segmentation, the dominant resource cost, fans out over page chunks on
the same pool).  Results are merged in registration order regardless of
backend or completion order, so a parallel build's taxonomy is
byte-identical to the serial one's at any ``backend × workers``.

Shared resource preparation is cached in a :class:`ResourceCache` keyed
on the dump's content fingerprint plus the resource-relevant slice of
the config (:attr:`PipelineConfig.RESOURCE_FIELDS`): rebuilding on an
unchanged dump skips lexicon harvesting, corpus segmentation and PMI
recounting entirely (``cache_hit`` on the ``resources`` trace record
says when).

``CNProbaseBuilder.build_incremental(dump, previous)`` is the nightly
refresh path: a page-level :class:`~repro.encyclopedia.model.DumpDiff`
against the previous dump drives exact reuse — unchanged pages keep
their segment lists and PMI advances by counter subtract/add (when the
harvested lexicon is provably unchanged), ``page_local`` sources replay
previous candidates for unchanged pages — and the result is
byte-identical to a full build, plus a
:class:`~repro.taxonomy.delta.TaxonomyDelta` whose application to the
previous taxonomy reproduces it exactly (the equivalence contract the
tests and ``benchmarks/bench_incremental_build.py`` assert).

Per-stage wall-clock, candidate counts, worker counts and cache hits
are recorded in a :class:`~repro.core.stages.StageTrace` on the result.
Stages remain individually switchable through :class:`PipelineConfig`
(what the ablation benchmarks drive) or through the registry's
enable/disable switches; custom stages register through
:mod:`repro.core.stages` without touching this module.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from time import perf_counter
from typing import Callable, ClassVar

from repro.core.executors import (
    BACKENDS,
    Executor,
    WorkerContext,
    resolve_executor,
)
from repro.core.generation.merge import CandidatePool, PoolStats
from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.generation.predicates import DiscoveryResult
from repro.core.stages import (
    DRIVER_KIND,
    SOURCE_KIND,
    VERIFIER_KIND,
    BuildContext,
    ExecutionPlan,
    StageEntry,
    StageRecord,
    StageRegistry,
    StageTrace,
    default_registry,
    plan_execution,
)
from repro.core.verification.incompatible import FilterDecision
from repro.encyclopedia.model import DumpDiff, EncyclopediaDump, diff_dumps
from repro.errors import PipelineError
from repro.neural.training import TrainingReport
from repro.obs import get_hub
from repro.nlp.lexicon import Lexicon
from repro.nlp.ner import NamedEntityRecognizer
from repro.nlp.pmi import PMIStatistics
from repro.nlp.pos import POSTagger
from repro.nlp.segmentation import Segmenter
from repro.taxonomy.delta import TaxonomyDelta
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@dataclass
class PipelineConfig:
    """Switches and hyper-parameters for one build."""

    # generation sources
    enable_bracket: bool = True
    enable_abstract: bool = True
    enable_infobox: bool = True
    enable_tag: bool = True
    # verification heuristics
    enable_incompatible: bool = True
    enable_ner: bool = True
    enable_syntax: bool = True
    # component parameters
    neural: NeuralGenConfig = field(default_factory=NeuralGenConfig)
    ne_threshold: float = 0.55
    predicate_min_aligned: int = 2
    predicate_min_support: float = 0.28
    predicate_max_selected: int = 12
    agglomerative_separation: bool = False
    # neural extraction can be capped for wall-clock control; None = all
    max_generation_pages: int | None = None
    harvest_lexicon: bool = True
    # add-k smoothing of the PMI statistics derived from the dump corpus
    pmi_smoothing: float = 0.1
    # execution: workers for source waves and verifier shards
    # (1 = the serial pipeline, bit-for-bit the default behaviour)
    workers: int = 1
    # which executor serves those workers: "serial" | "threads" |
    # "processes" — output is byte-identical across all three at any
    # worker count; "processes" is the one that reaches real cores
    backend: str = "threads"
    # estimated work items (pages scanned per wave, relations per
    # verifier pass) below which the executor runs inline instead of
    # spinning up a pool; None = the backend's default floor, 0 =
    # always parallelize (what the equivalence tests use)
    parallel_floor: int | None = None
    # consult the builder's ResourceCache for the shared NLP resources
    resource_cache: bool = True

    #: Fields that shape the *shared resources* (lexicon, segmenter,
    #: tagger, recognizer, PMI, segmented corpus) rather than individual
    #: stages.  This is the config slice of every resource-cache key —
    #: a flag listed here must invalidate cached resources when flipped,
    #: and a flag absent from it must not.  Keep it in sync with
    #: :meth:`CNProbaseBuilder._build_resources`.
    RESOURCE_FIELDS: ClassVar[tuple[str, ...]] = (
        "harvest_lexicon",
        "pmi_smoothing",
    )


@dataclass
class SharedResources:
    """The expensive once-per-build derivations a :class:`ResourceCache`
    can replay: everything in :class:`BuildContext` that depends only on
    the dump (and the resource slice of the config), not on stages.

    ``page_segments`` slices the flat ``corpus`` per page (same list
    objects, keyed by page_id in dump order) — the reuse unit of an
    incremental rebuild: unchanged pages' segment lists carry over
    verbatim and changed pages' old lists are subtracted from PMI.

    ``segment_workers`` records how many process workers served the
    corpus segmentation when it was first derived (1 = inline).
    """

    lexicon: Lexicon
    segmenter: Segmenter
    tagger: POSTagger
    recognizer: NamedEntityRecognizer
    pmi: PMIStatistics
    corpus: list[list[str]]
    titles: dict[str, str]
    page_segments: dict[str, list[list[str]]] = field(default_factory=dict)
    segment_workers: int = 1


class ResourceCache:
    """Bounded LRU of :class:`SharedResources`, keyed by dump + config.

    The key is ``(dump.fingerprint(), resource-config signature)``: a
    nightly rebuild on an unchanged dump skips lexicon harvesting,
    corpus segmentation and PMI recounting — the dominant fixed cost of
    a build.  Entries are treated as immutable by every stage (stages
    only read the shared resources), so sharing them across builds is
    safe.  Thread-safe; the default instance is shared by all builders.

    An entry pins the whole segmented corpus of its dump, so the
    default capacity is one — the rebuild-on-unchanged-dump case needs
    exactly the latest entry, and anything larger would keep a full
    superseded corpus resident.  Pass a bigger *maxsize* when a process
    really does alternate between dumps.
    """

    def __init__(self, maxsize: int = 1) -> None:
        if maxsize < 1:
            raise PipelineError(f"cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[tuple, SharedResources] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> SharedResources | None:
        with self._lock:
            resources = self._entries.get(key)
            if resources is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return resources

    def put(self, key: tuple, resources: SharedResources) -> None:
        with self._lock:
            self._entries[key] = resources
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide default cache: nightly-style repeated builds through any
#: builder hit the same warm entries.
DEFAULT_RESOURCE_CACHE = ResourceCache()


@dataclass
class BuildResult:
    """Everything a build produces, for evaluation and reporting."""

    taxonomy: Taxonomy
    pool_stats: PoolStats
    per_source_relations: dict[str, list[IsARelation]]
    discovery: DiscoveryResult | None
    training_report: TrainingReport | None
    removed_by: dict[str, list[IsARelation]]
    reclassified: int
    cycle_edges: list[tuple[str, str]]
    titles: dict[str, str]
    stage_trace: StageTrace = field(default_factory=StageTrace)

    @property
    def n_removed(self) -> int:
        return sum(len(v) for v in self.removed_by.values())


@dataclass
class PreviousBuild:
    """What an incremental rebuild needs to know about the last build.

    ``dump`` and ``taxonomy`` are mandatory (the diff base and the delta
    base); ``per_source`` — the previous build's pre-merge candidate
    lists — is optional and unlocks replaying ``page_local`` generation
    stages for unchanged pages.  A cold process that only has the files
    on disk (``cn-probase build --incremental``) runs without it,
    trading the generation replay away but keeping exactness.
    """

    dump: EncyclopediaDump
    taxonomy: Taxonomy
    per_source: dict[str, list[IsARelation]] | None = None

    @classmethod
    def from_result(
        cls, dump: EncyclopediaDump, result: BuildResult
    ) -> "PreviousBuild":
        """The warm-process form: previous dump + its full build result."""
        return cls(
            dump=dump,
            taxonomy=result.taxonomy,
            per_source=result.per_source_relations,
        )


@dataclass
class IncrementalBuildResult(BuildResult):
    """A :class:`BuildResult` plus the delta story of how it got there.

    ``taxonomy`` is byte-identical (via :meth:`Taxonomy.save`) to what a
    full :meth:`CNProbaseBuilder.build` on the same dump produces — the
    equivalence contract — and ``delta`` applied to the previous
    taxonomy reproduces it exactly.  ``resource_mode`` records how the
    shared resources were obtained: ``"incremental"`` (previous
    lexicon/segmenter reused, unchanged pages' segment lists carried
    over, PMI advanced by subtract/add), ``"cache"`` (same-dump
    resource-cache hit) or ``"full"`` (fallback re-derivation, e.g.
    the harvested lexicon changed).
    """

    delta: TaxonomyDelta | None = None
    diff: DumpDiff | None = None
    resource_mode: str = "full"


@dataclass
class _GenerationReplay:
    """Per-page candidate replay for ``page_local`` generation stages.

    Holds the previous build's pre-merge candidates per source and the
    page_ids whose extraction must re-run.  A stage qualifies when it
    declares ``page_local = True`` — the promise that its per-page
    output is a pure function of the page alone and every emitted
    relation carries the page's id as its hyponym — and its previous
    candidates are at hand.  Merging walks the *new* dump order, so the
    combined list is exactly what a full run over the new dump emits:
    removed pages drop out, unchanged pages replay, diff pages are
    fresh.
    """

    regenerate: frozenset[str]
    previous: dict[str, list[IsARelation]]

    def available_for(self, entry: StageEntry) -> bool:
        return (
            bool(getattr(entry.factory, "page_local", False))
            and entry.name in self.previous
        )

    def merge(
        self,
        name: str,
        dump: EncyclopediaDump,
        fresh: list[IsARelation],
    ) -> list[IsARelation]:
        prev_by_page: dict[str, list[IsARelation]] = {}
        for relation in self.previous[name]:
            prev_by_page.setdefault(relation.hyponym, []).append(relation)
        fresh_by_page: dict[str, list[IsARelation]] = {}
        for relation in fresh:
            fresh_by_page.setdefault(relation.hyponym, []).append(relation)
        merged: list[IsARelation] = []
        for page in dump:
            source = (
                fresh_by_page
                if page.page_id in self.regenerate
                else prev_by_page
            )
            merged.extend(source.get(page.page_id, ()))
        return merged


class CNProbaseBuilder:
    """End-to-end builder of a CN-Probase-style taxonomy.

    The builder owns a :class:`StageRegistry` (its own copy of
    :func:`default_registry` unless one is injected), so callers can
    register custom stages or flip switches per builder without
    affecting other builds.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        lexicon: Lexicon | None = None,
        recognizer: NamedEntityRecognizer | None = None,
        registry: StageRegistry | None = None,
        resource_cache: ResourceCache | None = None,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        if self.config.workers < 1:
            raise PipelineError(
                f"workers must be >= 1, got {self.config.workers}"
            )
        if self.config.backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise PipelineError(
                f"unknown backend {self.config.backend!r}; "
                f"expected one of {known}"
            )
        self.registry = registry if registry is not None else default_registry()
        self._external_lexicon = lexicon
        self._external_recognizer = recognizer
        self._resource_cache = (
            resource_cache if resource_cache is not None
            else DEFAULT_RESOURCE_CACHE
        )

    # -- pipeline --------------------------------------------------------------

    def plan(self) -> ExecutionPlan:
        """The wave/shard schedule the next :meth:`build` will follow."""
        return plan_execution(
            self.registry, self.config, self.config.workers,
            backend=self.config.backend,
        )

    def _executor(self, plan: ExecutionPlan) -> Executor:
        return resolve_executor(
            plan.backend, plan.workers, self.config.parallel_floor
        )

    def build(self, dump: EncyclopediaDump) -> BuildResult:
        if len(dump) == 0:
            raise PipelineError("cannot build a taxonomy from an empty dump")
        started = perf_counter()
        trace = StageTrace()
        plan = self.plan()
        executor = self._executor(plan)
        try:
            context = self._prepare_context(dump, trace, executor)
            result = self._execute(
                dump, context, trace, started, plan, executor
            )
        finally:
            executor.close()
        get_hub().record_stage_trace(trace, mode="full", backend=plan.backend)
        return result

    def build_incremental(
        self, dump: EncyclopediaDump, previous: PreviousBuild
    ) -> IncrementalBuildResult:
        """Rebuild for *dump* with cost proportional to what changed.

        The page-level :class:`~repro.encyclopedia.model.DumpDiff`
        against ``previous.dump`` drives three exact reuse levels:

        1. **resources** — when the harvested lexicon is provably
           unchanged (no pages added/removed, changed pages contribute
           the same title/tag/alias surfaces), the previous
           lexicon/segmenter/tagger/recognizer carry over, unchanged
           pages keep their per-page segment lists verbatim and PMI
           advances by exact counter subtract/add of just the changed
           pages' text.  Anything else falls back to full
           re-derivation — conservative, never approximate;
        2. **generation** — ``page_local`` sources replay their
           previous candidates for unchanged pages and re-extract only
           the diff's pages; globally-coupled sources re-run in full;
        3. **verification / assembly** — always re-run over the merged
           pool (the verifier fits are global), against warm caches.

        The result's taxonomy is byte-identical (saved JSONL) to a full
        :meth:`build` on *dump* — every reuse level above is applied
        only under conditions that provably cannot change the output —
        and the returned :class:`~repro.taxonomy.delta.TaxonomyDelta`
        applied to ``previous.taxonomy`` reproduces it exactly.
        """
        if len(dump) == 0:
            raise PipelineError("cannot build a taxonomy from an empty dump")
        started = perf_counter()
        trace = StageTrace()
        plan = self.plan()
        executor = self._executor(plan)
        try:
            diff_started = perf_counter()
            diff = diff_dumps(previous.dump, dump)
            trace.add(StageRecord(
                "diff", DRIVER_KIND, perf_counter() - diff_started,
                diff.n_touched, backend=plan.backend,
            ))
            context, resource_mode = self._prepare_context_incremental(
                dump, previous, diff, trace, executor
            )
            replay = None
            if previous.per_source is not None:
                replay = _GenerationReplay(
                    regenerate=diff.regenerate_ids(),
                    previous=previous.per_source,
                )
            result = self._execute(
                dump, context, trace, started, plan, executor, replay=replay
            )
        finally:
            executor.close()
        get_hub().record_stage_trace(
            trace, mode="incremental", backend=plan.backend
        )
        delta = TaxonomyDelta.compute(previous.taxonomy, result.taxonomy)
        return IncrementalBuildResult(
            **{f.name: getattr(result, f.name) for f in fields(BuildResult)},
            delta=delta,
            diff=diff,
            resource_mode=resource_mode,
        )

    def _execute(
        self,
        dump: EncyclopediaDump,
        context: BuildContext,
        trace: StageTrace,
        started: float,
        plan: ExecutionPlan,
        executor: Executor,
        replay: _GenerationReplay | None = None,
    ) -> BuildResult:
        pool = CandidatePool()
        backend = plan.backend
        # One picklable carve of the context primes the whole build:
        # per-wave state rides inside task payloads, so the process
        # pool is initialized exactly once.
        worker_state = WorkerContext.from_context(context)

        # generation: dependency waves; results merged in registration
        # order so every backend/worker count yields the identical pool.
        source_records = self._run_sources(
            plan, context, pool, executor, worker_state, replay
        )
        for entry in self.registry.sources():
            record = source_records.get(entry.name)
            if record is None:  # disabled by a switch
                record = StageRecord(
                    entry.name, SOURCE_KIND, 0.0, 0, ran=False,
                    backend=backend,
                )
            trace.add(record)

        # merge + concept-layer identification.
        merge_started = perf_counter()
        reclassified = pool.reclassify_concept_pages(dump)
        pool_stats = pool.stats()
        relations = pool.relations()
        trace.add(StageRecord(
            "merge", DRIVER_KIND, perf_counter() - merge_started,
            len(relations), backend=backend,
        ))

        # verification: every registered verifier, in order (disjunctive
        # veto, applied in sequence); per-relation-pure verifiers are
        # sharded over relation chunks.
        removed_by: dict[str, list[IsARelation]] = {}
        for entry in self.registry.verifiers():
            if not entry.active(self.config):
                trace.add(StageRecord(
                    entry.name, VERIFIER_KIND, 0.0, 0, ran=False,
                    backend=backend,
                ))
                continue
            stage_started = perf_counter()
            decision, n_workers = self._run_verifier(
                entry, context, relations, plan, executor, worker_state
            )
            elapsed = perf_counter() - stage_started
            removed_by[entry.name] = decision.removed
            relations = decision.kept
            trace.add(StageRecord(
                entry.name, VERIFIER_KIND, elapsed, len(decision.removed),
                workers=n_workers, backend=backend,
            ))

        # taxonomy assembly.
        assemble_started = perf_counter()
        taxonomy, cycle_edges = self._assemble(dump, relations, context.titles)
        trace.add(StageRecord(
            "assemble", DRIVER_KIND, perf_counter() - assemble_started,
            len(taxonomy), backend=backend,
        ))
        trace.total_seconds = perf_counter() - started

        return BuildResult(
            taxonomy=taxonomy,
            pool_stats=pool_stats,
            per_source_relations=context.per_source,
            discovery=context.discovery,
            training_report=context.training_report,
            removed_by=removed_by,
            reclassified=reclassified,
            cycle_edges=cycle_edges,
            titles=context.titles,
            stage_trace=trace,
        )

    # -- execution -----------------------------------------------------------------

    def _run_sources(
        self,
        plan: ExecutionPlan,
        context: BuildContext,
        pool: CandidatePool,
        executor: Executor,
        worker_state: WorkerContext,
        replay: _GenerationReplay | None = None,
    ) -> dict[str, StageRecord]:
        """Run every wave; merge results in registration order.

        ``context.per_source`` is filled as each wave completes (later
        waves read earlier output through ``relations_from``; the
        snapshot rides inside each task payload so process workers see
        it too), but the candidate pool is only fed after all waves,
        strictly in registration order — wave grouping moves
        dependency-free sources ahead of dependent ones, and neither
        that nor completion order may leak into the pool's
        first-seen-source dedup or ``Taxonomy.save``'s insertion order.
        A ``workers=N`` build on any backend therefore stays
        bit-for-bit equal to the serial pipeline.
        """
        records: dict[str, StageRecord] = {}
        for wave_number, wave in enumerate(plan.source_waves, start=1):
            n_workers = executor.effective_workers(
                len(wave), len(context.dump) * len(wave)
            )
            tasks = []
            for entry in wave:
                use_replay = replay is not None and replay.available_for(entry)
                tasks.append(_SourceTask(
                    name=entry.name,
                    factory=entry.factory,
                    per_source=dict(context.per_source),
                    generation_scope=(
                        replay.regenerate if use_replay else None
                    ),
                ))
            outcomes = executor.run(
                _execute_source, tasks, n_workers,
                shared=worker_state,
                stage=", ".join(entry.name for entry in wave),
                wave=wave_number,
            )
            for entry, task, outcome in zip(wave, tasks, outcomes):
                # Worker-side context mutations come back in the
                # outcome (a process worker's copies are invisible
                # here); apply them to the real context.
                if outcome.discovery is not None:
                    context.discovery = outcome.discovery
                if outcome.training_report is not None:
                    context.training_report = outcome.training_report
                relations = outcome.relations
                replayed = task.generation_scope is not None
                if relations is None:  # preconditions unmet (e.g. no priors)
                    records[entry.name] = StageRecord(
                        entry.name, SOURCE_KIND, outcome.seconds, 0,
                        ran=False, workers=n_workers, backend=plan.backend,
                    )
                    continue
                if replayed:
                    relations = replay.merge(
                        entry.name, context.dump, relations
                    )
                context.per_source[entry.name] = relations
                records[entry.name] = StageRecord(
                    entry.name, SOURCE_KIND, outcome.seconds, len(relations),
                    workers=n_workers, cache_hit=replayed,
                    backend=plan.backend,
                )
        ordered = {
            entry.name: context.per_source[entry.name]
            for entry in self.registry.sources()
            if entry.name in context.per_source
        }
        context.per_source.clear()
        context.per_source.update(ordered)
        for relations in ordered.values():
            pool.add(relations)
        return records

    def _run_verifier(
        self,
        entry: StageEntry,
        context: BuildContext,
        relations: list[IsARelation],
        plan: ExecutionPlan,
        executor: Executor,
        worker_state: WorkerContext,
    ) -> tuple[FilterDecision, int]:
        """One verifier pass, sharded when the stage declares purity.

        Shards are contiguous chunks and their decisions are concatenated
        in chunk order, so kept/removed keep the exact serial ordering.
        Each shard verifies through a fresh stage instance — per-instance
        state (e.g. rule counters) never crosses workers.
        """
        shardable = bool(getattr(entry.factory, "per_relation_pure", False))
        n_workers = 1
        if shardable:
            n_workers = executor.effective_workers(
                min(plan.workers, len(relations)), len(relations)
            )
        if n_workers <= 1:
            return entry.factory().verify(context, relations), 1
        chunks = _split_chunks(relations, n_workers)
        tasks = [
            _VerifierTask(name=entry.name, factory=entry.factory,
                          relations=chunk)
            for chunk in chunks
        ]
        decisions = executor.run(
            _execute_verifier, tasks, len(chunks),
            shared=worker_state, stage=entry.name,
        )
        kept: list[IsARelation] = []
        removed: list[IsARelation] = []
        for decision in decisions:
            kept.extend(decision.kept)
            removed.extend(decision.removed)
        return FilterDecision(kept=kept, removed=removed), len(chunks)

    # -- helpers ------------------------------------------------------------------

    def _resource_signature(self) -> tuple:
        """The resource-relevant slice of the config (the "config hash").

        Built from :attr:`PipelineConfig.RESOURCE_FIELDS` — the declared
        list of every config field :meth:`_build_resources` actually
        reads (lexicon harvesting, PMI smoothing).  Shared resources
        depend on nothing else in :class:`PipelineConfig`: every other
        knob only affects stages, which consume the resources read-only,
        so flipping one must *not* invalidate cached resources.
        """
        return tuple(
            getattr(self.config, name)
            for name in PipelineConfig.RESOURCE_FIELDS
        )

    def _prepare_context(
        self,
        dump: EncyclopediaDump,
        trace: StageTrace,
        executor: Executor,
    ) -> BuildContext:
        """Derive (or replay) the shared NLP resources every stage reads."""
        started = perf_counter()
        cacheable = (
            self.config.resource_cache
            and self._external_lexicon is None
            and self._external_recognizer is None
        )
        resources = None
        cache_key: tuple | None = None
        if cacheable:
            cache_key = (dump.fingerprint(), self._resource_signature())
            resources = self._resource_cache.get(cache_key)
        cache_hit = resources is not None
        if resources is None:
            resources = self._build_resources(dump, executor=executor)
            if cacheable and cache_key is not None:
                self._resource_cache.put(cache_key, resources)
        trace.add(StageRecord(
            "resources", DRIVER_KIND, perf_counter() - started,
            len(resources.titles), cache_hit=cache_hit,
            workers=1 if cache_hit else resources.segment_workers,
            backend=executor.backend,
        ))
        return BuildContext(
            dump=dump,
            config=self.config,
            lexicon=resources.lexicon,
            segmenter=resources.segmenter,
            tagger=resources.tagger,
            recognizer=resources.recognizer,
            pmi=resources.pmi,
            corpus=resources.corpus,
            titles=resources.titles,
        )

    def _prepare_context_incremental(
        self,
        dump: EncyclopediaDump,
        previous: PreviousBuild,
        diff: DumpDiff,
        trace: StageTrace,
        executor: Executor,
    ) -> tuple[BuildContext, str]:
        """Shared resources for *dump*, reusing the previous build's where
        provably value-identical.

        The fast path requires the previous dump's resources to still
        sit in the builder's :class:`ResourceCache` (a nightly-refresh
        process keeps them warm) and the harvested lexicon to be
        provably unchanged — no pages added or removed and every
        changed page contributing the same title/tag/alias surfaces —
        the condition under which segmentation, tagging and NER are
        pure functions of unchanged inputs.  Then only the diff's pages
        pay for anything: their old segment lists are subtracted from a
        clone of the previous PMI counts, their new snippets segmented
        and added, and every other page's segment lists carry over
        verbatim.  Any other situation falls back to the full
        derivation path, keeping the output byte-identical in every
        case.
        """
        started = perf_counter()
        cacheable = (
            self.config.resource_cache
            and self._external_lexicon is None
            and self._external_recognizer is None
        )
        resources: SharedResources | None = None
        mode = "full"
        new_key = (dump.fingerprint(), self._resource_signature())
        if cacheable:
            cached = self._resource_cache.get(new_key)
            if cached is not None:
                resources, mode = cached, "cache"
        harvested: Lexicon | None = None
        if resources is None and cacheable:
            old_key = (
                previous.dump.fingerprint(), self._resource_signature()
            )
            old_resources = self._resource_cache.get(old_key)
            if old_resources is not None:
                stable, harvested = self._lexicon_stability(
                    previous.dump, dump, diff, old_resources.lexicon
                )
                if stable:
                    resources = self._advance_resources(
                        old_resources, previous.dump, dump, diff
                    )
                    mode = "incremental"
        if resources is None:
            resources = self._build_resources(
                dump, lexicon=harvested, executor=executor
            )
        if cacheable:
            self._resource_cache.put(new_key, resources)
        trace.add(StageRecord(
            "resources", DRIVER_KIND, perf_counter() - started,
            len(resources.titles), cache_hit=(mode != "full"),
            workers=1 if mode != "full" else resources.segment_workers,
            backend=executor.backend,
        ))
        return (
            BuildContext(
                dump=dump,
                config=self.config,
                lexicon=resources.lexicon,
                segmenter=resources.segmenter,
                tagger=resources.tagger,
                recognizer=resources.recognizer,
                pmi=resources.pmi,
                corpus=resources.corpus,
                titles=resources.titles,
            ),
            mode,
        )

    def _lexicon_stability(
        self,
        old_dump: EncyclopediaDump,
        new_dump: EncyclopediaDump,
        diff: DumpDiff,
        old_lexicon: Lexicon,
    ) -> tuple[bool, Lexicon | None]:
        """Whether the harvested lexicon provably did not change.

        Cheap proof first: harvesting accumulates per-surface weights
        commutatively (every contribution uses the same POS), so the
        lexicon is a pure function of the *multiset* of per-page
        contributions — with no pages added or removed and every
        changed page contributing the same surfaces, the multiset is
        unchanged without re-harvesting anything.  When that fails
        (e.g. surfaces moved between pages, netting out), a full
        re-harvest compared by content settles it; that harvest is
        returned so a fallback to full derivation reuses it instead of
        harvesting the same dump twice.  An injected external lexicon
        never varies with the dump and is trivially stable.
        """
        if self._external_lexicon is not None:
            return True, None
        if not self.config.harvest_lexicon:
            return True, None  # Lexicon.base() does not depend on the dump
        if not diff.added and not diff.removed and all(
            sorted(_harvest_contributions(old_dump.get(page_id)))
            == sorted(_harvest_contributions(new_dump.get(page_id)))
            for page_id in diff.changed
        ):
            return True, None
        harvested = self._prepare_lexicon(new_dump)
        return harvested.same_content(old_lexicon), harvested

    def _advance_resources(
        self,
        old: SharedResources,
        old_dump: EncyclopediaDump,
        new_dump: EncyclopediaDump,
        diff: DumpDiff,
    ) -> SharedResources:
        """The previous resources advanced to *new_dump*, paying only for
        the diff's pages.  Caller guarantees the lexicon is unchanged
        (:meth:`_lexicon_stable`), which makes every step exact:

        - unchanged pages keep their previous segment lists verbatim,
        - changed/added pages segment through the previous segmenter
          (same lexicon → same results as a cold build) and are added
          to a clone of the previous PMI counts, from which changed/
          removed pages' old lists were first subtracted,
        - the flat corpus is re-assembled in new-dump page order.
        """
        pmi = old.pmi.clone()
        for page_id in (*diff.changed, *diff.removed):
            pmi.remove_corpus(old.page_segments[page_id])
        corpus: list[list[str]] = []
        page_segments: dict[str, list[list[str]]] = {}
        regenerate = diff.regenerate_ids()
        for page in new_dump:
            if page.page_id in regenerate:
                segments = old.segmenter.segment_corpus(
                    page.text_snippets()
                )
                pmi.add_corpus(segments)
            else:
                segments = old.page_segments[page.page_id]
            page_segments[page.page_id] = segments
            corpus.extend(segments)
        return SharedResources(
            lexicon=old.lexicon,
            segmenter=old.segmenter,
            tagger=old.tagger,
            recognizer=old.recognizer,
            pmi=pmi,
            corpus=corpus,
            titles={page.page_id: page.title for page in new_dump},
            page_segments=page_segments,
        )

    def _build_resources(
        self,
        dump: EncyclopediaDump,
        lexicon: Lexicon | None = None,
        executor: Executor | None = None,
    ) -> SharedResources:
        """Derive everything from scratch; *lexicon*, when given, is a
        just-harvested lexicon for this exact dump (the incremental
        fallback hands its stability-check harvest over rather than
        paying for it twice).  Corpus segmentation — the dominant cost
        here — fans out over page chunks when *executor* reaches real
        cores (threads cannot: the Viterbi loop never releases the
        GIL)."""
        if lexicon is None:
            lexicon = self._prepare_lexicon(dump)
        segmenter = Segmenter(lexicon)
        tagger = POSTagger(lexicon)
        recognizer = (
            self._external_recognizer
            if self._external_recognizer is not None
            else NamedEntityRecognizer(lexicon)
        )
        corpus, page_segments, segment_workers = _segment_dump(
            segmenter, dump, executor
        )
        pmi = PMIStatistics(smoothing=self.config.pmi_smoothing)
        pmi.add_corpus(corpus)
        titles = {page.page_id: page.title for page in dump}
        return SharedResources(
            lexicon=lexicon,
            segmenter=segmenter,
            tagger=tagger,
            recognizer=recognizer,
            pmi=pmi,
            corpus=corpus,
            titles=titles,
            page_segments=page_segments,
            segment_workers=segment_workers,
        )

    @staticmethod
    def _assemble(
        dump: EncyclopediaDump,
        relations: list[IsARelation],
        titles: dict[str, str],
    ) -> tuple[Taxonomy, list[tuple[str, str]]]:
        taxonomy = Taxonomy()
        aliases = _collect_aliases(dump)
        for relation in relations:
            if relation.hyponym_kind == "entity":
                page_title = titles.get(relation.hyponym)
                if page_title is None:
                    continue
                taxonomy.add_entity(
                    Entity(
                        page_id=relation.hyponym,
                        name=page_title,
                        aliases=aliases.get(relation.hyponym, ()),
                    )
                )
            taxonomy.add_relation(relation)
        return taxonomy, taxonomy.finalize()

    def _prepare_lexicon(self, dump: EncyclopediaDump) -> Lexicon:
        if self._external_lexicon is not None:
            return self._external_lexicon
        if self.config.harvest_lexicon:
            return harvest_lexicon(dump)
        return Lexicon.base()


# -- executor task payloads ----------------------------------------------------
#
# Both the in-process and the process backends run these module-level
# functions over these picklable payloads — one code path, so the
# backends cannot diverge.  Shared immutable state arrives as the
# executor's primed payload (a WorkerContext, or the bare segmenter for
# the resources phase); per-task state rides in the payload itself.


@dataclass(frozen=True)
class _SourceTask:
    """One generation stage run: its factory, the earlier sources'
    output it may read, and (for incremental replay) the narrowed
    page scope — ``None`` means a full-scope run."""

    name: str
    factory: Callable[[], object]
    per_source: dict[str, list[IsARelation]]
    generation_scope: frozenset[str] | None = None


@dataclass(frozen=True)
class _SourceOutcome:
    """What a source run sends back — including the context fields a
    stage mutates (invisible to the parent when run in a process)."""

    relations: list[IsARelation] | None
    seconds: float
    discovery: DiscoveryResult | None = None
    training_report: TrainingReport | None = None


@dataclass(frozen=True)
class _VerifierTask:
    """One verifier shard: the stage factory plus its relation chunk."""

    name: str
    factory: Callable[[], object]
    relations: list[IsARelation]


def _execute_source(shared: WorkerContext, task: _SourceTask) -> _SourceOutcome:
    """Run one generation stage against a task-private context."""
    started = perf_counter()
    context = shared.materialize()
    context.per_source.update(task.per_source)
    if task.generation_scope is not None:
        context.generation_scope = task.generation_scope
    relations = task.factory().generate(context)
    return _SourceOutcome(
        relations=relations,
        seconds=perf_counter() - started,
        discovery=context.discovery,
        training_report=context.training_report,
    )


def _execute_verifier(
    shared: WorkerContext, task: _VerifierTask
) -> FilterDecision:
    """Verify one relation chunk through a fresh stage instance."""
    return task.factory().verify(shared.materialize(), task.relations)


def _segment_chunk(
    segmenter: Segmenter, pages: list[tuple[str, list[str]]]
) -> list[tuple[str, list[list[str]]]]:
    """Segment one chunk of ``(page_id, snippets)`` pairs."""
    return [
        (page_id, segmenter.segment_corpus(snippets))
        for page_id, snippets in pages
    ]


def _segment_dump(
    segmenter: Segmenter,
    dump: EncyclopediaDump,
    executor: Executor | None = None,
) -> tuple[list[list[str]], dict[str, list[list[str]]], int]:
    """:func:`_segment_pages`, fanned out over page chunks on real cores.

    Only an out-of-process executor is worth it — segmentation is pure
    CPython, so threads would serialize on the GIL and just pay pool
    overhead.  The per-page mapping is reassembled in dump order, so
    the flat corpus is exactly the serial one's.
    """
    n_workers = 1
    if executor is not None and executor.out_of_process:
        n_workers = executor.effective_workers(len(dump), len(dump))
    if n_workers <= 1:
        corpus, page_segments = _segment_pages(segmenter, dump)
        return corpus, page_segments, 1
    pages = [(page.page_id, list(page.text_snippets())) for page in dump]
    chunks = _split_chunks(pages, n_workers)
    results = executor.run(
        _segment_chunk, chunks, len(chunks),
        shared=segmenter, stage="resources",
    )
    page_segments: dict[str, list[list[str]]] = {}
    for chunk_result in results:
        for page_id, segments in chunk_result:
            page_segments[page_id] = segments
    corpus: list[list[str]] = []
    for page in dump:
        corpus.extend(page_segments[page.page_id])
    return corpus, page_segments, len(chunks)


def _segment_pages(
    segmenter: Segmenter, dump: EncyclopediaDump
) -> tuple[list[list[str]], dict[str, list[list[str]]]]:
    """The flat segmented corpus plus its per-page slices.

    The flat list is exactly ``segment_corpus(dump.text_corpus())`` —
    same order, same skip semantics — while the per-page mapping shares
    the same inner lists, giving incremental rebuilds their reuse and
    subtraction unit for free.
    """
    corpus: list[list[str]] = []
    page_segments: dict[str, list[list[str]]] = {}
    for page in dump:
        segments = segmenter.segment_corpus(page.text_snippets())
        page_segments[page.page_id] = segments
        corpus.extend(segments)
    return corpus, page_segments


def _harvest_contributions(page) -> list[tuple[str, int]]:
    """The lexicon entries one page feeds into :func:`harvest_lexicon`.

    The single source of truth for harvesting: the harvest loop *adds*
    exactly these (surface, weight) pairs, and the incremental build's
    lexicon-stability check compares their multisets — so the two can
    never drift apart.
    """
    contributions = [(page.title, 300)]
    contributions.extend(
        (tag, 200) for tag in page.tags if tag and len(tag) <= 8
    )
    contributions.extend((alias, 150) for alias in _page_aliases(page))
    return contributions


def _split_chunks(items: list, n: int) -> list[list]:
    """Split *items* into at most *n* contiguous chunks of near-equal size."""
    size, extra = divmod(len(items), n)
    chunks: list[list] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def harvest_lexicon(dump: EncyclopediaDump) -> Lexicon:
    """Base lexicon extended with surfaces harvested from the dump.

    Titles, tags and aliases go in the way real pipelines feed
    encyclopedia titles to jieba as a user dictionary.  Weights
    accumulate commutatively with a uniform POS, so the result is a
    pure function of the multiset of :func:`_harvest_contributions` —
    which is also what the incremental build's lexicon-stability check
    compares, making drift between the two impossible.
    """
    lexicon = Lexicon.base()
    for page in dump:
        for word, freq in _harvest_contributions(page):
            lexicon.add(word, freq, "n")
    return lexicon


def _page_aliases(page) -> tuple[str, ...]:
    return tuple(v for v in page.infobox_values("别名") if v)


def _collect_aliases(dump: EncyclopediaDump) -> dict[str, tuple[str, ...]]:
    return {
        page.page_id: _page_aliases(page)
        for page in dump
        if any(t.predicate == "别名" for t in page.infobox)
    }


def build_cn_probase(
    dump: EncyclopediaDump,
    config: PipelineConfig | None = None,
    lexicon: Lexicon | None = None,
    registry: StageRegistry | None = None,
) -> BuildResult:
    """One-call convenience wrapper around :class:`CNProbaseBuilder`."""
    return CNProbaseBuilder(
        config=config, lexicon=lexicon, registry=registry
    ).build(dump)
