"""Verification module: the three noise filters of Section III.

A candidate isA relation is dropped as soon as *any* verifier judges it
wrong (the paper's disjunctive policy):

- :class:`IncompatibleConceptFilter` — mines incompatible concept pairs
  (Jaccard over hyponym sets + cosine over attribute distributions) and
  arbitrates with KL divergence (Eq. 1),
- :class:`NEHypernymFilter` — named-entity hypernyms via noisy-or support
  (Eq. 2),
- :class:`SyntaxRuleFilter` — thematic-word lexicon + head-stem rule.
"""

from repro.core.verification.incompatible import (
    FilterDecision,
    IncompatibleConceptFilter,
    IncompatibleVerifier,
)
from repro.core.verification.ner_filter import NEHypernymFilter, NERVerifier
from repro.core.verification.syntax_rules import SyntaxRuleFilter, SyntaxVerifier
from repro.core.verification.thematic import THEMATIC_WORDS

__all__ = [
    "FilterDecision",
    "IncompatibleConceptFilter",
    "IncompatibleVerifier",
    "NEHypernymFilter",
    "NERVerifier",
    "SyntaxRuleFilter",
    "SyntaxVerifier",
    "THEMATIC_WORDS",
]
