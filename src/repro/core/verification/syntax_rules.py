"""Syntax-rule verification (Section III-C).

Rule 1 — a good hypernym is not a thematic word (政治, 军事...); the
184-entry lexicon reconstruction lives in
:mod:`repro.core.verification.thematic`.

Rule 2 — the stem of the hypernym's lexical head must not occur in a
non-head position of the hyponym: isA(教育机构, 教育) is rejected
because 教育 heads nothing in 教育机构.

A trivial identity guard (hyponym surface == hypernym) is included, as
any real implementation needs it after merging multiple sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.verification.incompatible import FilterDecision
from repro.core.verification.thematic import THEMATIC_WORDS
from repro.errors import SegmentationError
from repro.nlp.head import head_stem_violates
from repro.nlp.pos import POSTagger
from repro.nlp.segmentation import Segmenter
from repro.taxonomy.model import HYPONYM_ENTITY, IsARelation


@dataclass
class RuleCounts:
    """How many relations each rule removed (for the ablation report)."""

    thematic: int = 0
    head_stem: int = 0
    identity: int = 0

    def total(self) -> int:
        return self.thematic + self.head_stem + self.identity


class SyntaxRuleFilter:
    """Lexicon + head-stem syntactic filters."""

    def __init__(
        self,
        segmenter: Segmenter,
        tagger: POSTagger | None = None,
        thematic_words: frozenset[str] = THEMATIC_WORDS,
    ) -> None:
        self._segmenter = segmenter
        self._tagger = tagger if tagger is not None else POSTagger(segmenter.lexicon)
        self._thematic = thematic_words
        self.last_counts = RuleCounts()

    def is_thematic(self, hypernym: str) -> bool:
        """Rule 1: thematic lexicon membership (plus POS back-off)."""
        return hypernym in self._thematic or self._tagger.is_thematic(hypernym)

    def violates_head_stem(self, hyponym_surface: str, hypernym: str) -> bool:
        """Rule 2 on surfaces: segment both sides, then check the stems."""
        try:
            hypo_words = self._segmenter.segment(hyponym_surface)
            hyper_words = self._segmenter.segment(hypernym)
        except SegmentationError:
            return False
        return head_stem_violates(hypo_words, hyper_words)

    def filter(
        self,
        relations: list[IsARelation],
        titles: dict[str, str] | None = None,
    ) -> FilterDecision:
        """Apply both rules; *titles* maps page_ids to mention surfaces."""
        titles = titles or {}
        counts = RuleCounts()
        kept: list[IsARelation] = []
        removed: list[IsARelation] = []
        for relation in relations:
            surface = relation.hyponym
            if relation.hyponym_kind == HYPONYM_ENTITY:
                surface = titles.get(relation.hyponym, relation.hyponym)
            if self.is_thematic(relation.hypernym):
                counts.thematic += 1
                removed.append(relation)
            elif surface == relation.hypernym:
                counts.identity += 1
                removed.append(relation)
            elif self.violates_head_stem(surface, relation.hypernym):
                counts.head_stem += 1
                removed.append(relation)
            else:
                kept.append(relation)
        self.last_counts = counts
        return FilterDecision(kept=kept, removed=removed)


class SyntaxVerifier:
    """Registry adapter: the syntax-rule verification stage."""

    name = "syntax"
    # Each relation's verdict depends only on that relation (thematic
    # lexicon, identity, head-stem on its own surfaces), never on the
    # rest of the candidate list — so the driver may shard this verifier
    # over relation chunks and concatenate the decisions.
    per_relation_pure = True

    def verify(self, context, relations: list[IsARelation]) -> FilterDecision:
        return SyntaxRuleFilter(context.segmenter, context.tagger).filter(
            relations, context.titles
        )
