"""Named-entity hypernym verification (Section III-B).

A named entity can rarely be a hypernym: ``isA(iPhone, 美国)`` is wrong
because 美国 is an NE.  The filter combines two support signals per
hypernym H:

- ``s1(H)`` = NE(H)/total(H) over the text corpus (graded by recogniser
  confidence),
- ``s2(H)`` = support of H as an NE *inside the candidate taxonomy*: how
  often H occurs on the hyponym (instance) side versus the hypernym side,

with the noisy-or of Eq. 2: ``s(H) = 1 − (1 − s1)(1 − s2)``.  Relations
whose hypernym support exceeds the threshold are dropped.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.verification.incompatible import FilterDecision
from repro.errors import PipelineError
from repro.nlp.ner import NamedEntityRecognizer, NESupport
from repro.taxonomy.model import HYPONYM_ENTITY, IsARelation


def noisy_or(s1: float, s2: float) -> float:
    """Eq. 2 — amplifies either support signal."""
    return 1.0 - (1.0 - s1) * (1.0 - s2)


@dataclass(frozen=True)
class HypernymSupport:
    """Both NE support scores for one hypernym surface."""

    hypernym: str
    s1: float
    s2: float

    @property
    def combined(self) -> float:
        return noisy_or(self.s1, self.s2)


class NEHypernymFilter:
    """Drops relations whose hypernym is NE-supported above threshold."""

    def __init__(
        self,
        recognizer: NamedEntityRecognizer,
        threshold: float = 0.55,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise PipelineError(
                f"NE support threshold must be in (0, 1], got {threshold}"
            )
        self._recognizer = recognizer
        self._threshold = threshold
        self._corpus_support: dict[str, NESupport] = {}
        self._hypo_counts: Counter[str] = Counter()
        self._hyper_counts: Counter[str] = Counter()
        self._titles: dict[str, str] = {}
        self._fitted = False

    def fit(
        self,
        segmented_corpus: list[list[str]],
        relations: list[IsARelation],
        titles: dict[str, str] | None = None,
    ) -> "NEHypernymFilter":
        """Collect corpus-side (s1) and taxonomy-side (s2) statistics.

        *titles* maps entity page_ids to their mention surface so that
        page_id hyponyms contribute their title, not the raw id.
        """
        self._corpus_support = self._recognizer.corpus_support(segmented_corpus)
        self._titles = dict(titles or {})
        self._hypo_counts.clear()
        self._hyper_counts.clear()
        for relation in relations:
            surface = relation.hyponym
            if relation.hyponym_kind == HYPONYM_ENTITY:
                surface = self._titles.get(relation.hyponym, relation.hyponym)
            self._hypo_counts[surface] += 1
            self._hyper_counts[relation.hypernym] += 1
        self._fitted = True
        return self

    # -- scores --------------------------------------------------------------

    def s1(self, hypernym: str) -> float:
        support = self._corpus_support.get(hypernym)
        if support is not None and support.total > 0:
            return support.ratio
        # Unseen in corpus: fall back to the recogniser's judgement.
        result = self._recognizer.classify(hypernym)
        return result[1] if result is not None else 0.0

    def s2(self, hypernym: str) -> float:
        as_hypo = self._hypo_counts.get(hypernym, 0)
        as_hyper = self._hyper_counts.get(hypernym, 0)
        if as_hypo == 0:
            return 0.0
        return as_hypo / (as_hypo + as_hyper)

    def support(self, hypernym: str) -> HypernymSupport:
        if not self._fitted:
            raise PipelineError("fit() must run before scoring")
        return HypernymSupport(
            hypernym=hypernym, s1=self.s1(hypernym), s2=self.s2(hypernym)
        )

    # -- filtering ----------------------------------------------------------------

    def filter(self, relations: list[IsARelation]) -> FilterDecision:
        if not self._fitted:
            raise PipelineError("fit() must run before filter()")
        kept: list[IsARelation] = []
        removed: list[IsARelation] = []
        cache: dict[str, float] = {}
        for relation in relations:
            hypernym = relation.hypernym
            if hypernym not in cache:
                cache[hypernym] = self.support(hypernym).combined
            if cache[hypernym] > self._threshold:
                removed.append(relation)
            else:
                kept.append(relation)
        return FilterDecision(kept=kept, removed=removed)


class NERVerifier:
    """Registry adapter: the NE-hypernym verification stage."""

    name = "ner"

    def verify(self, context, relations: list[IsARelation]) -> FilterDecision:
        ner = NEHypernymFilter(
            context.recognizer, threshold=context.config.ne_threshold
        )
        ner.fit(context.corpus, relations, context.titles)
        return ner.filter(relations)
