"""Incompatible-concept verification (Section III-A).

Two concepts are *compatible* when they plausibly share entities (singer
and actor); incompatible when they cannot (person and book).  The filter
runs in two steps:

1. **pair mining** — concepts are incompatible when their hyponym sets
   barely overlap (Jaccard) *and* their attribute distributions diverge
   (cosine).  Both distributions come from the candidate pool and the
   infobox, not from gold data.
2. **arbitration** — for an entity claimed by two incompatible concepts,
   the KL divergence between the entity's attribute distribution and each
   concept's (Eq. 1) decides which claim is wrong: the larger-KL concept
   is dropped.

This is the verifier that removes cross-sense leakage on ambiguous
titles (the 音乐-tag-on-刘德华 class of error).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.encyclopedia.model import EncyclopediaDump
from repro.errors import PipelineError
from repro.taxonomy.model import HYPONYM_ENTITY, IsARelation

_EPSILON = 1e-9


def _normalise(counts: Counter[str]) -> dict[str, float]:
    total = sum(counts.values())
    if total == 0:
        return {}
    return {key: value / total for key, value in counts.items()}


def jaccard(a: set[str], b: set[str]) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def cosine(a: dict[str, float], b: dict[str, float]) -> float:
    if not a or not b:
        return 0.0
    dot = sum(value * b.get(key, 0.0) for key, value in a.items())
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def kl_divergence(
    entity_dist: dict[str, float], concept_dist: dict[str, float]
) -> float:
    """Eq. 1: D_KL(v_att(e) || v_att(c)) with epsilon smoothing."""
    total = 0.0
    for key, p in entity_dist.items():
        if p <= 0.0:
            continue
        q = concept_dist.get(key, 0.0) + _EPSILON
        total += p * math.log(p / q)
    return total


@dataclass
class FilterDecision:
    """Outcome of one verifier run."""

    kept: list[IsARelation]
    removed: list[IsARelation]

    @property
    def n_removed(self) -> int:
        return len(self.removed)


class IncompatibleConceptFilter:
    """Two-step incompatible-pair mining + KL arbitration."""

    def __init__(
        self,
        jaccard_threshold: float = 0.02,
        cosine_threshold: float = 0.35,
        min_concept_entities: int = 3,
    ) -> None:
        self._jaccard_threshold = jaccard_threshold
        self._cosine_threshold = cosine_threshold
        self._min_concept_entities = min_concept_entities
        self._concept_entities: dict[str, set[str]] = {}
        self._concept_attrs: dict[str, dict[str, float]] = {}
        self._entity_attrs: dict[str, dict[str, float]] = {}
        self._fitted = False

    # -- step 0: statistics from pool + infobox ---------------------------

    def fit(
        self, relations: list[IsARelation], dump: EncyclopediaDump
    ) -> "IncompatibleConceptFilter":
        concept_entities: dict[str, set[str]] = defaultdict(set)
        entity_attr_counts: dict[str, Counter[str]] = {}
        for page in dump:
            if page.infobox:
                entity_attr_counts[page.page_id] = Counter(
                    triple.predicate for triple in page.infobox
                )
        concept_attr_counts: dict[str, Counter[str]] = defaultdict(Counter)
        for relation in relations:
            if relation.hyponym_kind != HYPONYM_ENTITY:
                continue
            concept_entities[relation.hypernym].add(relation.hyponym)
            attrs = entity_attr_counts.get(relation.hyponym)
            if attrs:
                concept_attr_counts[relation.hypernym].update(attrs)
        self._concept_entities = dict(concept_entities)
        self._concept_attrs = {
            concept: _normalise(counts)
            for concept, counts in concept_attr_counts.items()
        }
        self._entity_attrs = {
            page_id: _normalise(counts)
            for page_id, counts in entity_attr_counts.items()
        }
        self._fitted = True
        return self

    # -- step 1: incompatible pair test ----------------------------------------

    def incompatible(self, concept_a: str, concept_b: str) -> bool:
        """True when the two concepts should not share entities."""
        entities_a = self._concept_entities.get(concept_a, set())
        entities_b = self._concept_entities.get(concept_b, set())
        if (
            len(entities_a) < self._min_concept_entities
            or len(entities_b) < self._min_concept_entities
        ):
            return False  # not enough evidence to call them incompatible
        if jaccard(entities_a, entities_b) > self._jaccard_threshold:
            return False
        attrs_a = self._concept_attrs.get(concept_a, {})
        attrs_b = self._concept_attrs.get(concept_b, {})
        return cosine(attrs_a, attrs_b) <= self._cosine_threshold

    # -- step 2: KL arbitration ----------------------------------------------------

    def entity_concept_kl(self, page_id: str, concept: str) -> float:
        entity_dist = self._entity_attrs.get(page_id, {})
        concept_dist = self._concept_attrs.get(concept, {})
        if not entity_dist or not concept_dist:
            return 0.0
        return kl_divergence(entity_dist, concept_dist)

    def filter(self, relations: list[IsARelation]) -> FilterDecision:
        if not self._fitted:
            raise PipelineError("fit() must run before filter()")
        by_entity: dict[str, list[IsARelation]] = defaultdict(list)
        passthrough: list[IsARelation] = []
        for relation in relations:
            if relation.hyponym_kind == HYPONYM_ENTITY:
                by_entity[relation.hyponym].append(relation)
            else:
                passthrough.append(relation)

        kept: list[IsARelation] = list(passthrough)
        removed: list[IsARelation] = []
        for page_id, entity_relations in by_entity.items():
            doomed: set[str] = set()
            concepts = [r.hypernym for r in entity_relations]
            for i, concept_a in enumerate(concepts):
                for concept_b in concepts[i + 1:]:
                    if concept_a in doomed or concept_b in doomed:
                        continue
                    if not self.incompatible(concept_a, concept_b):
                        continue
                    kl_a = self.entity_concept_kl(page_id, concept_a)
                    kl_b = self.entity_concept_kl(page_id, concept_b)
                    doomed.add(concept_a if kl_a > kl_b else concept_b)
            for relation in entity_relations:
                if relation.hypernym in doomed:
                    removed.append(relation)
                else:
                    kept.append(relation)
        return FilterDecision(kept=kept, removed=removed)


class IncompatibleVerifier:
    """Registry adapter: the incompatible-concept verification stage."""

    name = "incompatible"

    def verify(self, context, relations: list[IsARelation]) -> FilterDecision:
        incompatible = IncompatibleConceptFilter()
        incompatible.fit(relations, context.dump)
        return incompatible.filter(relations)
