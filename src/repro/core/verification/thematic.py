"""The 184-entry thematic-word lexicon (Section III-C, rule 1).

The paper filters hypernyms found in a lexicon of 184 non-taxonomic
thematic words collected from Li et al. (2015): portal-channel topics
like 政治 or 军事 that tag *aboutness*, never class membership.  We
reconstruct an equivalent lexicon: the base thematic seeds plus genuine
two-part thematic compounds (流行音乐, 国际政治, ...), exactly 184
entries — the same size as the original, same word class.
"""

from __future__ import annotations

from repro.nlp.base_lexicon import THEMATIC_SEEDS

# Topic-domain compounds: attributive prefix × topic head.  All of these
# are channel/topic labels in Chinese portals — thematic, not taxonomic.
_COMPOUND_PREFIXES: tuple[str, ...] = (
    "古典", "流行", "现代", "当代", "国际", "民族", "大众", "传统",
    "网络", "数字", "群众", "民间", "都市", "乡村", "校园",
)
_COMPOUND_HEADS: tuple[str, ...] = (
    "音乐", "文化", "艺术", "体育", "经济", "政治", "教育", "文学",
)


def _build() -> frozenset[str]:
    words = list(THEMATIC_SEEDS)
    for prefix in _COMPOUND_PREFIXES:
        for head in _COMPOUND_HEADS:
            compound = prefix + head
            if compound not in words:
                words.append(compound)
            if len(words) == 184:
                return frozenset(words)
    raise AssertionError(
        f"thematic lexicon construction produced {len(words)} != 184 entries"
    )


THEMATIC_WORDS: frozenset[str] = _build()
