"""JSONL persistence for encyclopedia dumps.

One JSON object per line keeps dumps streamable and diff-friendly; the
format round-trips exactly through :meth:`EncyclopediaPage.to_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.encyclopedia.model import EncyclopediaDump, EncyclopediaPage
from repro.errors import CorpusError


def save_dump(dump: EncyclopediaDump, path: str | Path) -> int:
    """Write *dump* to *path* as JSONL; returns the number of pages."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w", encoding="utf-8") as handle:
        for page in dump:
            handle.write(json.dumps(page.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def load_dump(path: str | Path) -> EncyclopediaDump:
    """Load a JSONL dump written by :func:`save_dump`."""
    source = Path(path)
    if not source.exists():
        raise CorpusError(f"dump file not found: {source}")
    dump = EncyclopediaDump()
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusError(f"{source}:{line_no}: invalid JSON: {exc}") from exc
            dump.add(EncyclopediaPage.from_dict(record))
    return dump
