"""Data model for encyclopedia pages and dumps.

A page mirrors the anatomy of Figure 1 in the paper:

- ``title`` — the entity mention (``刘德华``),
- ``bracket`` — the disambiguation noun compound (``中国香港男演员``),
- ``abstract`` — free-text lead paragraph,
- ``infobox`` — SPO triples (``<刘德华, 职业, 演员>``),
- ``tags`` — flat category labels (``人物``, ``演员``, ``音乐``...).

``page_id`` is the disambiguated identity: two senses of the same mention
(e.g. 苹果 the fruit vs 苹果 the company) are distinct pages sharing a
title.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CorpusError


@dataclass(frozen=True)
class Triple:
    """One infobox SPO triple; the subject is the owning page's id."""

    subject: str
    predicate: str
    value: str

    def to_dict(self) -> dict[str, str]:
        return {"s": self.subject, "p": self.predicate, "o": self.value}

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "Triple":
        try:
            return cls(subject=data["s"], predicate=data["p"], value=data["o"])
        except KeyError as exc:
            raise CorpusError(f"triple record missing key: {exc}") from exc


@dataclass(frozen=True)
class EncyclopediaPage:
    """One encyclopedia article with its four information sources."""

    page_id: str
    title: str
    bracket: str | None = None
    abstract: str = ""
    infobox: tuple[Triple, ...] = ()
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.page_id:
            raise CorpusError("page_id must be non-empty")
        if not self.title:
            raise CorpusError(f"page {self.page_id!r} has an empty title")

    def digest(self) -> str:
        """Stable content hash of this page alone.

        Two pages with equal content share a digest regardless of which
        dump they sit in; any edited field changes it.  This is the unit
        the incremental-build diff compares, so it must cover every
        field a generation stage can read.
        """
        return hashlib.sha256(
            json.dumps(
                self.to_dict(), ensure_ascii=False, sort_keys=True
            ).encode("utf-8")
        ).hexdigest()

    @property
    def full_title(self) -> str:
        """Rendered title including the bracket annotation when present."""
        if self.bracket:
            return f"{self.title}（{self.bracket}）"
        return self.title

    @property
    def has_abstract(self) -> bool:
        return bool(self.abstract.strip())

    def infobox_values(self, predicate: str) -> list[str]:
        """All infobox values recorded for *predicate* on this page."""
        return [t.value for t in self.infobox if t.predicate == predicate]

    def text_snippets(self) -> tuple[str, ...]:
        """This page's free-text snippets, in corpus order.

        The per-page unit of :meth:`EncyclopediaDump.text_corpus`; the
        incremental build keys segmentation reuse on it, so the two
        must stay in lockstep.
        """
        snippets: list[str] = []
        if self.has_abstract:
            snippets.append(self.abstract)
        if self.bracket:
            snippets.append(self.bracket)
        snippets.extend(self.tags)
        return tuple(snippets)

    def to_dict(self) -> dict:
        return {
            "page_id": self.page_id,
            "title": self.title,
            "bracket": self.bracket,
            "abstract": self.abstract,
            "infobox": [t.to_dict() for t in self.infobox],
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EncyclopediaPage":
        try:
            return cls(
                page_id=data["page_id"],
                title=data["title"],
                bracket=data.get("bracket"),
                abstract=data.get("abstract", ""),
                infobox=tuple(Triple.from_dict(t) for t in data.get("infobox", ())),
                tags=tuple(data.get("tags", ())),
            )
        except KeyError as exc:
            raise CorpusError(f"page record missing key: {exc}") from exc


@dataclass
class DumpStats:
    """Aggregate counts matching how the paper describes its input dump."""

    n_pages: int = 0
    n_abstracts: int = 0
    n_triples: int = 0
    n_tags: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "pages": self.n_pages,
            "abstracts": self.n_abstracts,
            "triples": self.n_triples,
            "tags": self.n_tags,
        }


@dataclass(frozen=True)
class DumpDiff:
    """Page-level difference between two dumps (old → new).

    ``added`` are page_ids only the new dump has, ``removed`` only the
    old one, ``changed`` are present in both with different per-page
    digests.  All three are sorted tuples, so a diff is deterministic
    and serialisable.  This is the currency the incremental build path
    consumes: generation work is re-run only for ``added`` + ``changed``
    pages, and ``removed`` pages' contributions fall out of the merge.
    """

    added: tuple[str, ...] = ()
    changed: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.changed or self.removed)

    @property
    def n_touched(self) -> int:
        return len(self.added) + len(self.changed) + len(self.removed)

    def regenerate_ids(self) -> frozenset[str]:
        """Pages of the *new* dump whose extraction must be re-run."""
        return frozenset(self.added) | frozenset(self.changed)

    def as_dict(self) -> dict[str, list[str]]:
        return {
            "added": list(self.added),
            "changed": list(self.changed),
            "removed": list(self.removed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DumpDiff":
        return cls(
            added=tuple(data.get("added", ())),
            changed=tuple(data.get("changed", ())),
            removed=tuple(data.get("removed", ())),
        )


def diff_dumps(old: "EncyclopediaDump", new: "EncyclopediaDump") -> DumpDiff:
    """Page-level :class:`DumpDiff` between *old* and *new*.

    Compares per-page content digests, so reordering pages alone yields
    an empty diff (page identity is ``page_id``, not position).
    """
    old_digests = old.page_digests()
    new_digests = new.page_digests()
    added = sorted(set(new_digests) - set(old_digests))
    removed = sorted(set(old_digests) - set(new_digests))
    changed = sorted(
        page_id
        for page_id, digest in new_digests.items()
        if page_id in old_digests and old_digests[page_id] != digest
    )
    return DumpDiff(
        added=tuple(added), changed=tuple(changed), removed=tuple(removed)
    )


class EncyclopediaDump:
    """An in-memory collection of pages with id lookup."""

    def __init__(self, pages: list[EncyclopediaPage] | None = None) -> None:
        self._pages: list[EncyclopediaPage] = []
        self._by_id: dict[str, EncyclopediaPage] = {}
        self._fingerprint: str | None = None
        self._page_digests: dict[str, str] | None = None
        for page in pages or []:
            self.add(page)

    def add(self, page: EncyclopediaPage) -> None:
        if page.page_id in self._by_id:
            raise CorpusError(f"duplicate page_id {page.page_id!r}")
        self._pages.append(page)
        self._by_id[page.page_id] = page
        self._fingerprint = None
        self._page_digests = None

    def page_digests(self) -> dict[str, str]:
        """``page_id → content digest`` for every page, in dump order.

        The per-page granularity of :meth:`fingerprint`: this is what
        :func:`diff_dumps` compares to name exactly the pages an
        incremental rebuild must revisit.  Memoised until the next
        :meth:`add`; the returned mapping must be treated as read-only.
        """
        if self._page_digests is None:
            self._page_digests = {
                page.page_id: page.digest() for page in self._pages
            }
        return self._page_digests

    def fingerprint(self) -> str:
        """Stable content hash of every page, for rebuild caching.

        Two dumps with the same pages in the same order share a
        fingerprint; any added or edited page changes it.  Derived from
        the per-page digests (so the two can never disagree), computed
        lazily and memoised until the next :meth:`add`.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for page_id, page_digest in self.page_digests().items():
                digest.update(page_id.encode("utf-8"))
                digest.update(b"\x00")
                digest.update(page_digest.encode("ascii"))
                digest.update(b"\x00")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def diff(self, newer: "EncyclopediaDump") -> DumpDiff:
        """:func:`diff_dumps` from this dump (old) to *newer*."""
        return diff_dumps(self, newer)

    def get(self, page_id: str) -> EncyclopediaPage | None:
        return self._by_id.get(page_id)

    def __len__(self) -> int:
        return len(self._pages)

    def __iter__(self) -> Iterator[EncyclopediaPage]:
        return iter(self._pages)

    def __contains__(self, page_id: str) -> bool:
        return page_id in self._by_id

    @property
    def pages(self) -> tuple[EncyclopediaPage, ...]:
        return tuple(self._pages)

    def stats(self) -> DumpStats:
        stats = DumpStats(n_pages=len(self._pages))
        for page in self._pages:
            if page.has_abstract:
                stats.n_abstracts += 1
            stats.n_triples += len(page.infobox)
            stats.n_tags += len(page.tags)
        return stats

    def text_corpus(self) -> Iterator[str]:
        """Yield every free-text snippet: abstracts, brackets, tag strings.

        This is the "Chinese text corpus" used for PMI and NE support
        statistics.  Delegates to :meth:`EncyclopediaPage.text_snippets`
        so the per-page slicing the incremental build relies on can
        never drift from the flat corpus.
        """
        for page in self._pages:
            yield from page.text_snippets()
