"""Declared concept ontology and infobox predicate inventory.

This is the ground-truth schema the synthetic world samples from.  The
hierarchy is deliberately shaped like the domains the paper's examples
draw on (entertainers, companies, works, places, organisms, food), and the
infobox predicates split into

- *implicit isA predicates* (职业, 类型, 分类...) — the ones the paper's
  predicate-discovery step must find (341 candidates → 12 curated),
- *weakly aligned predicates* (称号, 属于...) — occasionally isA-like, so
  they surface as discovery candidates but do not deserve whitelisting,
- *plain attribute predicates* (出生日期, 面积...) — never isA.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ConceptSpec:
    """One declared concept: name, parents, domain kind and sampling data.

    ``weight`` > 0 marks a leaf concept entities are drawn from.
    ``modifiers`` are attributive words that form true subconcepts
    (流行 + 歌手 → 流行歌手); ``ne_modifiers`` are place words that may
    prefix the bracket compound without creating a new concept.
    """

    name: str
    parents: tuple[str, ...]
    kind: str
    weight: float = 0.0
    modifiers: tuple[str, ...] = ()
    ne_modifiers: tuple[str, ...] = ()


_PERSON_NE_MODS = ("中国", "美国", "日本", "韩国", "香港", "台湾")
_ORG_NE_MODS = ("中国", "上海", "北京", "深圳", "杭州")

CONCEPTS: tuple[ConceptSpec, ...] = (
    # --- persons -----------------------------------------------------------
    ConceptSpec("人物", (), "person"),
    ConceptSpec("艺人", ("人物",), "person"),
    ConceptSpec("演员", ("艺人",), "person", 6.0, ("男", "女"), _PERSON_NE_MODS),
    ConceptSpec("歌手", ("艺人",), "person", 6.0,
                ("流行", "民谣", "摇滚", "男", "女"), _PERSON_NE_MODS),
    ConceptSpec("导演", ("艺人",), "person", 2.0, (), _PERSON_NE_MODS),
    ConceptSpec("音乐家", ("艺人",), "person"),
    ConceptSpec("作曲家", ("音乐家",), "person", 1.0, (), _PERSON_NE_MODS),
    ConceptSpec("钢琴家", ("音乐家",), "person", 1.0, (), _PERSON_NE_MODS),
    ConceptSpec("作家", ("人物",), "person", 4.0,
                ("科幻", "武侠", "言情", "当代"), _PERSON_NE_MODS),
    ConceptSpec("诗人", ("人物",), "person", 1.5, ("当代", "古代"), ("中国",)),
    ConceptSpec("科学家", ("人物",), "person"),
    ConceptSpec("物理学家", ("科学家",), "person", 1.5, (), _PERSON_NE_MODS),
    ConceptSpec("化学家", ("科学家",), "person", 1.0, (), _PERSON_NE_MODS),
    ConceptSpec("数学家", ("科学家",), "person", 1.0, (), _PERSON_NE_MODS),
    ConceptSpec("企业家", ("人物",), "person", 2.5, (), _PERSON_NE_MODS),
    ConceptSpec("运动员", ("人物",), "person", 2.5, (), _PERSON_NE_MODS),
    ConceptSpec("政治家", ("人物",), "person", 1.0, (), _PERSON_NE_MODS),
    ConceptSpec("医生", ("人物",), "person", 1.5, (), ("中国",)),
    ConceptSpec("教师", ("人物",), "person", 1.5, (), ("中国",)),
    # --- organisations --------------------------------------------------------
    ConceptSpec("组织", (), "organisation"),
    ConceptSpec("公司", ("组织",), "organisation", 4.0,
                ("科技", "互联网", "上市", "跨国"), _ORG_NE_MODS),
    ConceptSpec("大学", ("组织",), "organisation", 1.5, ("综合", "重点"), ("中国",)),
    ConceptSpec("乐队", ("组织",), "organisation", 1.0, ("摇滚",), _PERSON_NE_MODS),
    ConceptSpec("球队", ("组织",), "organisation", 1.0, (), _ORG_NE_MODS),
    ConceptSpec("银行", ("公司",), "organisation", 1.0, (), _ORG_NE_MODS),
    ConceptSpec("医院", ("组织",), "organisation", 1.0, ("综合",), _ORG_NE_MODS),
    ConceptSpec("研究所", ("组织",), "organisation", 0.8, (), ("中国",)),
    # --- places -----------------------------------------------------------------
    ConceptSpec("地点", (), "place"),
    ConceptSpec("国家", ("地点",), "place", 0.6),
    ConceptSpec("城市", ("地点",), "place", 2.0, ("热带",), ("中国",)),
    ConceptSpec("景点", ("地点",), "place", 1.5, (), ("中国",)),
    ConceptSpec("山脉", ("地点",), "place", 0.8),
    ConceptSpec("湖泊", ("地点",), "place", 0.8, ("淡水",)),
    ConceptSpec("岛屿", ("地点",), "place", 0.6, ("热带",)),
    # --- works --------------------------------------------------------------------
    ConceptSpec("作品", (), "work"),
    ConceptSpec("电影", ("作品",), "work", 4.5,
                ("科幻", "爱情", "动作", "悬疑"), ("中国", "美国")),
    ConceptSpec("小说", ("作品",), "work", 4.0, ("武侠", "科幻", "言情", "推理")),
    ConceptSpec("歌曲", ("作品",), "work", 3.5, ("流行", "民谣")),
    ConceptSpec("专辑", ("作品",), "work", 1.5, ()),
    ConceptSpec("电视剧", ("作品",), "work", 2.0, ("武侠", "言情")),
    ConceptSpec("游戏", ("作品",), "work", 1.5, ("角色扮演",)),
    # --- organisms ------------------------------------------------------------------
    ConceptSpec("生物", (), "biology"),
    ConceptSpec("动物", ("生物",), "biology"),
    ConceptSpec("哺乳动物", ("动物",), "biology", 1.2),
    ConceptSpec("鸟类", ("动物",), "biology", 1.0, ("观赏",)),
    ConceptSpec("鱼类", ("动物",), "biology", 1.0, ("淡水", "深海")),
    ConceptSpec("昆虫", ("动物",), "biology", 0.8),
    ConceptSpec("犬种", ("哺乳动物",), "biology", 0.8, ("大型", "小型")),
    ConceptSpec("植物", ("生物",), "biology"),
    ConceptSpec("乔木", ("植物",), "biology", 1.0, ("常绿", "落叶")),
    ConceptSpec("灌木", ("植物",), "biology", 0.6),
    ConceptSpec("花卉", ("植物",), "biology", 1.2, ("观赏", "多年生")),
    ConceptSpec("草本植物", ("植物",), "biology", 0.8, ("一年生", "药用")),
    ConceptSpec("水果", ("植物",), "biology", 1.2, ("热带",)),
    # --- food --------------------------------------------------------------------------
    ConceptSpec("食品", (), "food"),
    ConceptSpec("菜肴", ("食品",), "food", 1.2, ("家常",)),
    ConceptSpec("小吃", ("食品",), "food", 1.0),
    ConceptSpec("饮料", ("食品",), "food", 0.8),
    ConceptSpec("甜点", ("食品",), "food", 0.8),
)

CONCEPT_BY_NAME: dict[str, ConceptSpec] = {c.name: c for c in CONCEPTS}

# Extra modifier words not in the base lexicon but used above.
EXTRA_MODIFIERS: tuple[str, ...] = ("家常", "角色扮演", "古装")


# --- infobox predicates --------------------------------------------------------

@dataclass(frozen=True)
class PredicateSpec:
    """An infobox predicate: surface name, value type, and isA semantics.

    ``value_kind`` drives value synthesis in the renderer:
    ``concept`` (a true concept of the entity), ``person-name``,
    ``place-name``, ``work-title``, ``org-name``, ``date``, ``number``,
    ``text``, ``thematic``.
    """

    name: str
    value_kind: str
    is_implicit_isa: bool = False
    # probability that a *weakly aligned* predicate emits a concept value
    concept_leak: float = 0.0


# The 12 predicates the paper's authors manually whitelist.
ISA_PREDICATES: tuple[PredicateSpec, ...] = (
    PredicateSpec("职业", "concept", True),
    PredicateSpec("主要职业", "concept", True),
    PredicateSpec("身份", "concept", True),
    PredicateSpec("类型", "concept", True),
    PredicateSpec("体裁", "concept", True),
    PredicateSpec("流派", "concept", True),
    PredicateSpec("分类", "concept", True),
    PredicateSpec("类别", "concept", True),
    PredicateSpec("机构类型", "concept", True),
    PredicateSpec("性质", "concept", True),
    PredicateSpec("所属类群", "concept", True),
    PredicateSpec("所属品类", "concept", True),
)

PREDICATE_WHITELIST: frozenset[str] = frozenset(p.name for p in ISA_PREDICATES)

# Weakly aligned predicates: they sometimes hold a concept value, so the
# discovery step sees them as candidates, but most of their values are not
# hypernyms — the "manual curation" step must reject them.
WEAK_PREDICATES: tuple[PredicateSpec, ...] = (
    PredicateSpec("称号", "text", False, concept_leak=0.22),
    PredicateSpec("属于", "thematic", False, concept_leak=0.35),
    PredicateSpec("相关领域", "thematic", False, concept_leak=0.15),
    PredicateSpec("别称", "text", False, concept_leak=0.2),
)

# Plain attributes, grouped by domain kind.  Never legitimately isA.
PLAIN_PREDICATES: dict[str, tuple[PredicateSpec, ...]] = {
    "person": (
        PredicateSpec("中文名", "self-name"),
        PredicateSpec("国籍", "place-name"),
        PredicateSpec("出生日期", "date"),
        PredicateSpec("出生地", "place-name"),
        PredicateSpec("毕业院校", "org-name"),
        PredicateSpec("代表作品", "work-title"),
        PredicateSpec("经纪公司", "org-name"),
        PredicateSpec("身高", "number"),
        PredicateSpec("体重", "number"),
        PredicateSpec("血型", "text"),
        PredicateSpec("星座", "text"),
        PredicateSpec("获奖情况", "text"),
        PredicateSpec("配偶", "person-name"),
        PredicateSpec("爱好", "thematic"),
        PredicateSpec("主要成就", "text"),
    ),
    "organisation": (
        PredicateSpec("中文名", "self-name"),
        PredicateSpec("总部地点", "place-name"),
        PredicateSpec("成立时间", "date"),
        PredicateSpec("创始人", "person-name"),
        PredicateSpec("注册资本", "number"),
        PredicateSpec("员工数", "number"),
        PredicateSpec("经营范围", "thematic"),
        PredicateSpec("年营业额", "number"),
    ),
    "place": (
        PredicateSpec("中文名", "self-name"),
        PredicateSpec("所属地区", "place-name"),
        PredicateSpec("面积", "number"),
        PredicateSpec("人口", "number"),
        PredicateSpec("海拔", "number"),
        PredicateSpec("著名景点", "text"),
        PredicateSpec("气候", "text"),
    ),
    "work": (
        PredicateSpec("中文名", "self-name"),
        PredicateSpec("作者", "person-name"),
        PredicateSpec("导演", "person-name"),
        PredicateSpec("主演", "person-name"),
        PredicateSpec("发行时间", "date"),
        PredicateSpec("出版社", "org-name"),
        PredicateSpec("制片地区", "place-name"),
        PredicateSpec("时长", "number"),
        PredicateSpec("页数", "number"),
    ),
    "biology": (
        PredicateSpec("中文学名", "self-name"),
        PredicateSpec("分布区域", "place-name"),
        PredicateSpec("栖息环境", "text"),
        PredicateSpec("花期", "text"),
        PredicateSpec("寿命", "number"),
        PredicateSpec("体长", "number"),
    ),
    "food": (
        PredicateSpec("中文名", "self-name"),
        PredicateSpec("主要食材", "text"),
        PredicateSpec("口味", "text"),
        PredicateSpec("产地", "place-name"),
        PredicateSpec("热量", "number"),
    ),
}

# isA predicate names available to each domain kind.
ISA_PREDICATES_BY_KIND: dict[str, tuple[str, ...]] = {
    "person": ("职业", "主要职业", "身份"),
    "organisation": ("机构类型", "性质",),
    "place": ("类别",),
    "work": ("类型", "体裁", "流派"),
    "biology": ("分类", "所属类群"),
    "food": ("分类", "所属品类"),
}


def leaf_concepts() -> list[ConceptSpec]:
    """All concepts with positive entity-sampling weight."""
    return [c for c in CONCEPTS if c.weight > 0]


def concept_ancestors(name: str) -> set[str]:
    """Transitive ancestors of a declared concept (excluding itself)."""
    seen: set[str] = set()
    frontier = list(CONCEPT_BY_NAME[name].parents)
    while frontier:
        parent = frontier.pop()
        if parent in seen:
            continue
        seen.add(parent)
        frontier.extend(CONCEPT_BY_NAME[parent].parents)
    return seen
