"""Synthetic CN-DBpedia-style world generation.

The generator samples a ground-truth ontology (concept DAG + entities with
attributes), then renders every entity into an encyclopedia page whose four
sources (bracket, abstract, infobox, tag) carry calibrated noise.  The
retained ground truth acts as the labelling oracle for every precision
experiment.
"""

from repro.encyclopedia.synthesis.noise import NoiseConfig
from repro.encyclopedia.synthesis.world import ConceptInfo, EntityInfo, SyntheticWorld

__all__ = ["ConceptInfo", "EntityInfo", "NoiseConfig", "SyntheticWorld"]
