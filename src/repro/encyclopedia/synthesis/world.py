"""Ground-truth world sampling and page rendering.

:class:`SyntheticWorld` replaces the CN-DBpedia dump the paper consumes.
``generate`` runs two passes:

1. **sample** — draw entities from the declared concept inventory
   (leaf-concept weights, name generators, optional second concepts,
   deliberate title collisions for ambiguity),
2. **render** — turn every entity into an :class:`EncyclopediaPage` whose
   bracket/abstract/infobox/tags carry the noise channels of
   :class:`NoiseConfig`, plus concept pages for a sample of subconcepts.

The world keeps everything the evaluation oracle needs: per-entity gold
hypernym strings, the concept DAG (declared + generated subconcepts), the
NE gazetteer and the word list to extend the segmentation lexicon with.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.encyclopedia.model import EncyclopediaDump, EncyclopediaPage, Triple
from repro.encyclopedia.synthesis import inventory, names
from repro.encyclopedia.synthesis.inventory import ConceptSpec, PredicateSpec
from repro.encyclopedia.synthesis.noise import NoiseConfig
from repro.nlp.base_lexicon import PLACE_SEEDS, THEMATIC_SEEDS
from repro.nlp.lexicon import Lexicon

_NE_TYPE_BY_KIND = {
    "person": "person",
    "organisation": "organisation",
    "place": "place",
    "work": "work",
    "biology": None,
    "food": None,
}

_LEXICON_POS_BY_KIND = {
    "person": "nr",
    "organisation": "nt",
    "place": "ns",
    "work": "nz",
    "biology": "n",
    "food": "n",
}

_TASTES = ("清淡", "香辣", "甜而不腻", "咸鲜", "酸甜")
_HABITATS = ("山地", "湿地", "平原", "丛林", "溪流")
_BLOOD_TYPES = ("A型", "B型", "O型", "AB型")
_ZODIACS = ("白羊座", "金牛座", "双子座", "巨蟹座", "狮子座", "处女座")
_HONORIFICS = ("青年才俊", "行业先锋", "一代宗师", "后起之秀")
_ACHIEVEMENTS = ("多次获奖", "屡获殊荣", "业内领先", "广受好评")


@dataclass(frozen=True)
class ConceptInfo:
    """A concept of the world: declared (inventory) or generated subconcept."""

    name: str
    parents: tuple[str, ...]
    kind: str
    declared: bool


@dataclass
class EntityInfo:
    """Ground truth for one entity/page."""

    page_id: str
    name: str
    kind: str
    leaf_concepts: tuple[str, ...]
    gold_hypernyms: set[str] = field(default_factory=set)
    attributes: list[tuple[str, str]] = field(default_factory=list)
    aliases: tuple[str, ...] = ()
    bracket: str | None = None


class SyntheticWorld:
    """A sampled ground-truth ontology plus its rendered encyclopedia."""

    def __init__(
        self,
        seed: int,
        noise: NoiseConfig,
        concepts: dict[str, ConceptInfo],
        entities: list[EntityInfo],
        pages: EncyclopediaDump,
        concept_page_ids: list[str],
    ) -> None:
        self.seed = seed
        self.noise = noise
        self._concepts = concepts
        self._entities = entities
        self._entities_by_id = {e.page_id: e for e in entities}
        self._pages = pages
        self._concept_page_ids = concept_page_ids
        self._ancestor_cache: dict[str, frozenset[str]] = {}
        self._mention_senses: dict[str, list[str]] = {}
        for entity in entities:
            self._mention_senses.setdefault(entity.name, []).append(entity.page_id)
            for alias in entity.aliases:
                self._mention_senses.setdefault(alias, []).append(entity.page_id)

    # ------------------------------------------------------------------ access

    @property
    def entities(self) -> tuple[EntityInfo, ...]:
        return tuple(self._entities)

    @property
    def concepts(self) -> dict[str, ConceptInfo]:
        return dict(self._concepts)

    @property
    def concept_page_ids(self) -> tuple[str, ...]:
        return tuple(self._concept_page_ids)

    def entity(self, page_id: str) -> EntityInfo | None:
        return self._entities_by_id.get(page_id)

    def dump(self) -> EncyclopediaDump:
        """The rendered encyclopedia (the pipeline's only input)."""
        return self._pages

    def mention_senses(self) -> dict[str, list[str]]:
        """Gold mention → page_id mapping (for men2ent evaluation)."""
        return {k: list(v) for k, v in self._mention_senses.items()}

    # -------------------------------------------------------------- gold oracle

    def concept_ancestors(self, name: str) -> frozenset[str]:
        """Transitive ancestors of *name* in the world concept DAG."""
        cached = self._ancestor_cache.get(name)
        if cached is not None:
            return cached
        seen: set[str] = set()
        info = self._concepts.get(name)
        frontier = list(info.parents) if info else []
        while frontier:
            parent = frontier.pop()
            if parent in seen:
                continue
            seen.add(parent)
            parent_info = self._concepts.get(parent)
            if parent_info:
                frontier.extend(parent_info.parents)
        result = frozenset(seen)
        self._ancestor_cache[name] = result
        return result

    def is_gold_isa(self, hyponym: str, hypernym: str) -> bool:
        """Oracle label for an extracted isA pair.

        *hyponym* is either a page_id (entity-level relation) or a concept
        string (subconcept-concept relation).  Compound hypernyms built by
        right-headed suffixing (男演员 isA 演员) are accepted via the
        suffix-head rule, mirroring how a human annotator judges them.
        """
        if not hyponym or not hypernym or hyponym == hypernym:
            return False
        entity = self._entities_by_id.get(hyponym)
        if entity is not None:
            return hypernym in entity.gold_hypernyms
        return self._is_gold_concept_pair(hyponym, hypernym)

    def _is_gold_concept_pair(self, hypo: str, hyper: str) -> bool:
        if hyper in self.concept_ancestors(hypo):
            return True
        # Right-headed compound: 科幻小说 isA 小说 / 男演员 isA 演员.
        if (
            hypo.endswith(hyper)
            and len(hypo) > len(hyper)
            and hyper in self._concepts
        ):
            return True
        return False

    # ------------------------------------------------------------ integrations

    def ne_gazetteer(self) -> dict[str, str]:
        """Entity titles → NE type, for seeding the recogniser."""
        gazetteer: dict[str, str] = {}
        for entity in self._entities:
            netype = _NE_TYPE_BY_KIND.get(entity.kind)
            if netype:
                gazetteer[entity.name] = netype
        return gazetteer

    def build_lexicon(self) -> Lexicon:
        """Base lexicon extended with world words (like a jieba user dict)."""
        lexicon = Lexicon.base()
        lexicon.add_all(inventory.EXTRA_MODIFIERS, freq=600, pos="a")
        for name, info in self._concepts.items():
            lexicon.add(name, 800, "n")
        for entity in self._entities:
            pos = _LEXICON_POS_BY_KIND.get(entity.kind, "n")
            lexicon.add(entity.name, 300, pos)
            for alias in entity.aliases:
                lexicon.add(alias, 150, pos)
        return lexicon

    # ---------------------------------------------------------------- generate

    @classmethod
    def generate(
        cls,
        seed: int = 7,
        n_entities: int = 5000,
        noise: NoiseConfig | None = None,
    ) -> "SyntheticWorld":
        """Sample a world of ≈*n_entities* entities deterministically."""
        if n_entities <= 0:
            raise ValueError(f"n_entities must be positive, got {n_entities}")
        config = noise if noise is not None else NoiseConfig()
        config.validate()
        rng = random.Random(seed)
        builder = _WorldBuilder(rng, config)
        builder.sample_entities(n_entities)
        builder.render_pages()
        return cls(
            seed=seed,
            noise=config,
            concepts=builder.concepts,
            entities=builder.entities,
            pages=builder.pages,
            concept_page_ids=builder.concept_page_ids,
        )


class _WorldBuilder:
    """Two-pass construction: sample entities, then render pages."""

    def __init__(self, rng: random.Random, config: NoiseConfig) -> None:
        self.rng = rng
        self.config = config
        self.concepts: dict[str, ConceptInfo] = {
            spec.name: ConceptInfo(spec.name, spec.parents, spec.kind, True)
            for spec in inventory.CONCEPTS
        }
        self.entities: list[EntityInfo] = []
        self.pages = EncyclopediaDump()
        self.concept_page_ids: list[str] = []
        self._names_by_kind: dict[str, list[str]] = {}
        self._used_names: set[str] = set()
        self._leaves = inventory.leaf_concepts()
        self._leaf_weights = [spec.weight for spec in self._leaves]
        self._person_leaves = [s for s in self._leaves if s.kind == "person"]
        self._sense_counter: dict[str, int] = {}
        self._entities_by_name: dict[str, list[EntityInfo]] | None = None

    # ---------------------------------------------------------------- sampling

    def sample_entities(self, n_entities: int) -> None:
        for _ in range(n_entities):
            leaf = self.rng.choices(self._leaves, weights=self._leaf_weights)[0]
            name = self._draw_name(leaf)
            leaf_names = self._assign_concepts(leaf)
            sense = self._sense_counter.get(name, 0)
            self._sense_counter[name] = sense + 1
            page_id = f"{name}#{sense}"
            entity = EntityInfo(
                page_id=page_id,
                name=name,
                kind=leaf.kind,
                leaf_concepts=tuple(leaf_names),
            )
            entity.gold_hypernyms.update(leaf_names)
            for concept in leaf_names:
                entity.gold_hypernyms.update(self._declared_ancestors(concept))
            if self.rng.random() < self.config.p_alias:
                entity.aliases = (self._alias_for(name),)
            self.entities.append(entity)
            self._names_by_kind.setdefault(leaf.kind, []).append(name)

    def _draw_name(self, leaf: ConceptSpec) -> str:
        # Deliberate cross-domain homographs exercise disambiguation and the
        # incompatible-concepts verifier.
        if self.rng.random() < self.config.p_ambiguous_name and self._used_names:
            other_kinds = [k for k in self._names_by_kind if k != leaf.kind]
            if other_kinds:
                kind = self.rng.choice(other_kinds)
                return self.rng.choice(self._names_by_kind[kind])
        for _ in range(20):
            name = names.generate_name(self.rng, leaf.kind, leaf.name)
            if name not in self._used_names:
                self._used_names.add(name)
                return name
        # Pools are finite; accept a same-kind collision as a last resort.
        self._used_names.add(name)
        return name

    def _assign_concepts(self, leaf: ConceptSpec) -> list[str]:
        leaf_names = [leaf.name]
        if self.rng.random() < self.config.p_second_concept:
            pool = (
                self._person_leaves if leaf.kind == "person"
                else [s for s in self._leaves if s.kind == leaf.kind]
            )
            candidates = [s for s in pool if s.name != leaf.name]
            if candidates:
                second = self.rng.choices(
                    candidates, weights=[s.weight for s in candidates]
                )[0]
                leaf_names.append(second.name)
        return leaf_names

    def _alias_for(self, name: str) -> str:
        if len(name) >= 3:
            return name[-2:]
        return "小" + name

    def _declared_ancestors(self, concept: str) -> set[str]:
        seen: set[str] = set()
        info = self.concepts.get(concept)
        frontier = list(info.parents) if info else []
        while frontier:
            parent = frontier.pop()
            if parent in seen:
                continue
            seen.add(parent)
            parent_info = self.concepts.get(parent)
            if parent_info:
                frontier.extend(parent_info.parents)
        return seen

    def _register_subconcept(self, modifier: str, concept: str) -> str:
        subconcept = modifier + concept
        if subconcept not in self.concepts:
            kind = self.concepts[concept].kind
            self.concepts[subconcept] = ConceptInfo(
                subconcept, (concept,), kind, False
            )
        return subconcept

    # --------------------------------------------------------------- rendering

    def render_pages(self) -> None:
        for entity in self.entities:
            self.pages.add(self._render_entity_page(entity))
        self._render_concept_pages()

    def _render_entity_page(self, entity: EntityInfo) -> EncyclopediaPage:
        primary = entity.leaf_concepts[0]
        spec = inventory.CONCEPT_BY_NAME[primary]

        bracket = self._render_bracket(entity, spec)
        tags = self._render_tags(entity)
        infobox = self._render_infobox(entity)
        abstract = self._render_abstract(entity)
        return EncyclopediaPage(
            page_id=entity.page_id,
            title=entity.name,
            bracket=bracket,
            abstract=abstract,
            infobox=tuple(infobox),
            tags=tuple(tags),
        )

    # Occupational-title brackets: 陈龙（蚂蚁金服首席战略官）.  Modifier ×
    # role combinations form true two-level subconcept chains
    # (首席战略官 isA 战略官 isA 人物) that only the separation
    # algorithm's rightmost path recovers in full.
    _ROLE_MODIFIERS = ("首席", "高级", "资深")
    _ROLE_NOUNS = ("战略官", "执行官", "财务官", "总裁", "经理", "董事长")

    def _render_bracket(self, entity: EntityInfo, spec: ConceptSpec) -> str | None:
        rng = self.rng
        if rng.random() < self.config.p_bracket_missing:
            return None
        if rng.random() < self.config.p_ne_bracket:
            # Noise: a bare place-name disambiguator (苹果（美国） style).
            return rng.choice(PLACE_SEEDS)
        if (
            entity.kind == "person"
            and rng.random() < self.config.p_role_bracket
        ):
            role_bracket = self._render_role_bracket(entity)
            if role_bracket is not None:
                return role_bracket
        parts: list[str] = []
        if spec.ne_modifiers and rng.random() < self.config.p_bracket_ne_modifier:
            parts.append(rng.choice(spec.ne_modifiers))
        concept = spec.name
        if spec.modifiers and rng.random() < self.config.p_bracket_modifier:
            modifier = rng.choice(spec.modifiers)
            subconcept = self._register_subconcept(modifier, concept)
            entity.gold_hypernyms.add(subconcept)
            concept = subconcept
        parts.append(concept)
        bracket = "".join(parts)
        entity.bracket = bracket
        return bracket

    def _render_role_bracket(self, entity: EntityInfo) -> str | None:
        rng = self.rng
        employers = self._names_by_kind.get("organisation")
        if not employers:
            return None
        modifier = rng.choice(self._ROLE_MODIFIERS)
        role = rng.choice(self._ROLE_NOUNS)
        compound = modifier + role
        # register the role chain as true concepts of the world
        if role not in self.concepts:
            self.concepts[role] = ConceptInfo(role, ("人物",), "person", False)
        if compound not in self.concepts:
            self.concepts[compound] = ConceptInfo(
                compound, (role,), "person", False
            )
        entity.gold_hypernyms.add(role)
        entity.gold_hypernyms.add(compound)
        bracket = rng.choice(employers) + compound
        entity.bracket = bracket
        return bracket

    def _render_tags(self, entity: EntityInfo) -> list[str]:
        rng = self.rng
        if rng.random() < self.config.p_tags_missing:
            return []
        tags: list[str] = []
        for concept in entity.leaf_concepts:
            tags.append(concept)
            for parent in self.concepts[concept].parents:
                if rng.random() < self.config.p_parent_tag:
                    tags.append(parent)
        roots = {
            self._root_of(concept) for concept in entity.leaf_concepts
        }
        for root in roots:
            if rng.random() < self.config.p_root_tag:
                tags.append(root)
        # --- noise channels ---
        if rng.random() < self.config.p_thematic_tag:
            for _ in range(rng.choice((1, 1, 2))):
                tags.append(rng.choice(THEMATIC_SEEDS))
        if rng.random() < self.config.p_ne_tag:
            tags.append(rng.choice(PLACE_SEEDS))
        if rng.random() < self.config.p_wrong_domain_tag:
            wrong = rng.choice(self._leaves)
            if wrong.name not in entity.gold_hypernyms:
                tags.append(wrong.name)
        if rng.random() < self.config.p_sibling_tag:
            siblings = [
                s for s in self._leaves
                if s.kind == entity.kind and s.name not in entity.gold_hypernyms
            ]
            if siblings:
                tags.append(rng.choice(siblings).name)
        if rng.random() < self.config.p_head_stem_tag and len(entity.name) >= 3:
            # e.g. 教育 tagged on a 教育机构-shaped title: the tag is a
            # strict prefix of the title, the configuration syntax rule 2
            # rejects.
            tags.append(entity.name[:2])
        if (
            self._sense_counter.get(entity.name, 0) > 1
            and rng.random() < self.config.p_cross_sense_tag
        ):
            sibling = self._sibling_sense(entity)
            if sibling is not None and sibling.leaf_concepts:
                tags.append(rng.choice(sibling.leaf_concepts))
        # Keep first occurrence order, drop duplicates.
        seen: set[str] = set()
        unique = [t for t in tags if not (t in seen or seen.add(t))]
        return unique

    def _sibling_sense(self, entity: EntityInfo) -> EntityInfo | None:
        if self._entities_by_name is None:
            self._entities_by_name = {}
            for other in self.entities:
                self._entities_by_name.setdefault(other.name, []).append(other)
        for other in self._entities_by_name.get(entity.name, ()):
            if other.page_id != entity.page_id:
                return other
        return None

    def _root_of(self, concept: str) -> str:
        current = concept
        while True:
            info = self.concepts[current]
            if not info.parents:
                return current
            current = info.parents[0]

    # -- infobox -----------------------------------------------------------

    def _render_infobox(self, entity: EntityInfo) -> list[Triple]:
        rng = self.rng
        if rng.random() < self.config.p_infobox_missing:
            return []
        triples: list[Triple] = []
        kind = entity.kind
        # implicit isA predicates
        isa_preds = inventory.ISA_PREDICATES_BY_KIND.get(kind, ())
        if isa_preds:
            pred = rng.choice(isa_preds)
            value = entity.leaf_concepts[0]
            triples.append(Triple(entity.page_id, pred, value))
            entity.attributes.append((pred, value))
            if (
                len(entity.leaf_concepts) > 1
                and rng.random() < self.config.p_second_isa_triple
            ):
                triples.append(
                    Triple(entity.page_id, pred, entity.leaf_concepts[1])
                )
                entity.attributes.append((pred, entity.leaf_concepts[1]))
        # weak predicates (discovery distractors)
        for weak in inventory.WEAK_PREDICATES:
            if rng.random() > 0.12:
                continue
            if rng.random() < weak.concept_leak:
                value = entity.leaf_concepts[0]
            else:
                value = self._plain_value(PredicateSpec(weak.name, weak.value_kind), entity)
            triples.append(Triple(entity.page_id, weak.name, value))
            entity.attributes.append((weak.name, value))
        # aliases surface as 别名 triples so the pipeline can index them
        for alias in entity.aliases:
            triples.append(Triple(entity.page_id, "别名", alias))
        # plain attributes
        for pred in inventory.PLAIN_PREDICATES[kind]:
            if rng.random() > 0.7:
                continue
            if rng.random() < self.config.p_infobox_error:
                value = rng.choice(self._leaves).name
            else:
                value = self._plain_value(pred, entity)
            triples.append(Triple(entity.page_id, pred.name, value))
            entity.attributes.append((pred.name, value))
        return triples

    def _plain_value(self, pred: PredicateSpec, entity: EntityInfo) -> str:
        rng = self.rng
        kind = pred.value_kind
        if kind == "self-name":
            return entity.name
        if kind == "place-name":
            return rng.choice(PLACE_SEEDS)
        if kind == "person-name":
            pool = self._names_by_kind.get("person")
            if pool and rng.random() < 0.6:
                return rng.choice(pool)
            return names.person_name(rng)
        if kind == "org-name":
            pool = self._names_by_kind.get("organisation")
            if pool and rng.random() < 0.6:
                return rng.choice(pool)
            return names.organisation_name(rng, "公司")
        if kind == "work-title":
            pool = self._names_by_kind.get("work")
            if pool and rng.random() < 0.6:
                return rng.choice(pool)
            return names.work_title(rng)
        if kind == "date":
            return (
                f"{rng.randint(1900, 2016)}年"
                f"{rng.randint(1, 12)}月{rng.randint(1, 28)}日"
            )
        if kind == "number":
            return str(rng.randint(1, 9999))
        if kind == "thematic":
            return rng.choice(THEMATIC_SEEDS)
        # generic text pools
        pools = {
            "血型": _BLOOD_TYPES,
            "星座": _ZODIACS,
            "称号": _HONORIFICS,
            "获奖情况": _ACHIEVEMENTS,
            "主要成就": _ACHIEVEMENTS,
            "口味": _TASTES,
            "主要食材": _TASTES,
            "栖息环境": _HABITATS,
            "花期": ("春季", "夏季", "秋季"),
            "著名景点": _HABITATS,
            "气候": ("亚热带季风气候", "温带大陆性气候"),
            "别称": _HONORIFICS,
        }
        pool = pools.get(pred.name)
        if pool:
            return rng.choice(pool)
        return rng.choice(_ACHIEVEMENTS)

    # -- abstract ------------------------------------------------------------

    def _render_abstract(self, entity: EntityInfo) -> str:
        rng = self.rng
        if rng.random() < self.config.p_abstract_missing:
            return ""
        if rng.random() < self.config.p_abstract_vague:
            return f"{entity.name}广为人知，相关信息多次见诸报道。"
        kind = entity.kind
        place = rng.choice(PLACE_SEEDS)
        year = rng.randint(1900, 2016)
        concepts = "、".join(entity.leaf_concepts)
        if kind == "person":
            work = names.work_title(rng)
            return (
                f"{entity.name}，{year}年出生于{place}，著名{concepts}。"
                f"代表作品《{work}》。"
            )
        if kind == "organisation":
            return (
                f"{entity.name}成立于{year}年，总部位于{place}，"
                f"是一家知名{concepts}。"
            )
        if kind == "place":
            return f"{entity.name}位于{place}，是著名的{concepts}之一。"
        if kind == "work":
            creator = names.person_name(rng)
            return (
                f"《{entity.name}》是{creator}创作的{concepts}，"
                f"于{year}年发行。"
            )
        if kind == "biology":
            habitat = rng.choice(_HABITATS)
            return f"{entity.name}是一种{concepts}，多见于{place}的{habitat}。"
        if kind == "food":
            taste = rng.choice(_TASTES)
            return f"{entity.name}是{place}的传统{concepts}，口味{taste}。"
        return f"{entity.name}是{concepts}。"

    # -- concept pages ----------------------------------------------------------

    def _render_concept_pages(self) -> None:
        rng = self.rng
        target = int(len(self.entities) * self.config.p_concept_page)
        candidates = [
            info for info in self.concepts.values()
            if info.parents  # roots have no hypernym to express
        ]
        rng.shuffle(candidates)
        for info in candidates[:target]:
            page_id = f"{info.name}#concept"
            if page_id in self.pages:
                continue
            tags = list(info.parents)
            root = self._root_of(info.name)
            if root not in tags and rng.random() < self.config.p_root_tag:
                tags.append(root)
            if rng.random() < self.config.p_thematic_tag:
                tags.append(rng.choice(THEMATIC_SEEDS))
            parent = info.parents[0]
            self.pages.add(
                EncyclopediaPage(
                    page_id=page_id,
                    title=info.name,
                    bracket=None,
                    abstract=f"{info.name}是{parent}的一类。",
                    infobox=(),
                    tags=tuple(dict.fromkeys(tags)),
                )
            )
            self.concept_page_ids.append(page_id)
