"""Calibrated noise channels for page rendering.

Each probability reproduces an error *type* the paper's verification module
targets:

- thematic tags (音乐 on a singer's page) → syntax-rule verifier, rule 1,
- NE tags/brackets (香港 as a tag) → NE verifier,
- cross-sense tag leakage on ambiguous titles → incompatible-concepts
  verifier,
- head-stem confusions (教育 tag on 教育机构-like pages) → syntax rule 2,
- random wrong-domain tags and infobox value errors → generic noise floor.

Defaults are calibrated so the merged candidate pool sits in the high-80s
precision band and the verified taxonomy lands near the paper's 95%.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NoiseConfig:
    """Per-source noise probabilities for the page renderer."""

    # -- tag channel -------------------------------------------------------
    p_thematic_tag: float = 0.24      # page receives 1–2 thematic topic tags
    p_ne_tag: float = 0.025           # tag is a place/person named entity
    p_wrong_domain_tag: float = 0.018  # tag is a concept from another domain
    p_sibling_tag: float = 0.115      # tag is a wrong same-domain concept
    # (sloppy within-domain tagging — the error class no verifier can
    # catch, which keeps realistic builds below 100% precision)
    p_cross_sense_tag: float = 0.50   # ambiguous title leaks a sibling-sense tag
    p_head_stem_tag: float = 0.012    # tag is the stem of the entity's head
    p_parent_tag: float = 0.55        # true parent concept also tagged
    p_root_tag: float = 0.35          # true root concept also tagged
    p_tags_missing: float = 0.06      # sparse page: no tags at all (the
    # pages only the abstract source can reach)

    # -- bracket channel ------------------------------------------------------
    p_bracket_missing: float = 0.30   # page has no disambiguation bracket
    p_ne_bracket: float = 0.030       # bracket is a bare place name
    p_bracket_ne_modifier: float = 0.40  # bracket prefixed by a place word
    p_bracket_modifier: float = 0.50  # bracket uses a subconcept modifier
    p_role_bracket: float = 0.12      # person bracket is employer+role
    # (the 蚂蚁金服首席战略官 pattern of the paper's Figure 3)

    # -- abstract channel --------------------------------------------------------
    p_abstract_missing: float = 0.40  # matches the dump's ~50% abstract rate
    p_abstract_vague: float = 0.15    # abstract omits the concept word

    # -- infobox channel -----------------------------------------------------------
    p_infobox_missing: float = 0.10
    p_infobox_error: float = 0.02     # plain predicate gets a concept value
    p_second_isa_triple: float = 0.50  # second career/type triple when present

    # -- world shape ------------------------------------------------------------------
    p_ambiguous_name: float = 0.035   # title collides with another domain's entity
    p_second_concept: float = 0.30    # entity belongs to a second leaf concept
    p_concept_page: float = 0.030     # fraction of pages describing subconcepts
    p_alias: float = 0.10             # entity gets an alias (for men2ent)

    def validate(self) -> None:
        """Raise ValueError when any probability leaves [0, 1]."""
        for name, value in vars(self).items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @classmethod
    def noiseless(cls) -> "NoiseConfig":
        """All error channels off — useful for oracle tests."""
        return cls(
            p_thematic_tag=0.0,
            p_ne_tag=0.0,
            p_wrong_domain_tag=0.0,
            p_sibling_tag=0.0,
            p_cross_sense_tag=0.0,
            p_head_stem_tag=0.0,
            p_ne_bracket=0.0,
            p_abstract_vague=0.0,
            p_infobox_error=0.0,
            p_ambiguous_name=0.0,
        )
