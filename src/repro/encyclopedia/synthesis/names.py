"""Deterministic entity-name generators, one per domain kind.

Names are composed from curated morpheme pools so they look like real
encyclopedia titles (surname+given for people, coined-prefix + suffix for
organisations and places, poetic syllables for works).  The pools are also
what the NER pattern rules key on, so generated names exercise the same
recognition paths real names would.
"""

from __future__ import annotations

import random

from repro.nlp.base_lexicon import GIVEN_NAME_CHARS, SURNAMES

_COINED_CHARS = "华腾创智联科瑞迅恒泰安达隆富鑫东方宏远信诚博雅正天启晟"
_PLACE_CHARS = "临安宁平清和永嘉瑞康庆云海江山阳川溪泉岭源坪洲"
_POETIC_CHARS = "忘情水云山月星夜梦雪风花春秋天地海心缘恋刀剑江湖城光影歌雨虹"
_BIO_PREFIX = "紫金银红青翠玉雪火月白黑斑灰彩"
_BIO_BASE = "杉枫桂兰梅菊藤莓桃李橘雀鹤鲤蝶蚁豹鹿燕鸥鲈鳜鹂"
_FOOD_PREFIX = "香麻辣甜酥脆糯鲜卤烤"
_FOOD_BASE = "饼糕面汤茶酒糖丸卷酥"

_ORG_SUFFIX_BY_CONCEPT = {
    "公司": ("公司", "集团", "科技公司"),
    "大学": ("大学",),
    "乐队": ("乐队",),
    "球队": ("队",),
    "银行": ("银行",),
    "医院": ("医院",),
    "研究所": ("研究所",),
}

_PLACE_SUFFIX_BY_CONCEPT = {
    "国家": ("国",),
    "城市": ("市", "城"),
    "景点": ("园", "寺", "谷"),
    "山脉": ("山",),
    "湖泊": ("湖",),
    "岛屿": ("岛",),
}


def person_name(rng: random.Random) -> str:
    """Surname + 1–2 given-name characters."""
    surname = rng.choice(SURNAMES)
    length = rng.choice((1, 2, 2))  # two-char given names dominate
    given = "".join(rng.choice(GIVEN_NAME_CHARS) for _ in range(length))
    return surname + given


def organisation_name(rng: random.Random, concept: str) -> str:
    prefix = rng.choice(_COINED_CHARS) + rng.choice(_COINED_CHARS)
    suffix = rng.choice(_ORG_SUFFIX_BY_CONCEPT.get(concept, ("公司",)))
    return prefix + suffix


def place_name(rng: random.Random, concept: str) -> str:
    core = rng.choice(_PLACE_CHARS) + rng.choice(_PLACE_CHARS)
    suffix = rng.choice(_PLACE_SUFFIX_BY_CONCEPT.get(concept, ("地",)))
    return core + suffix


def work_title(rng: random.Random) -> str:
    length = rng.choice((2, 2, 3, 4))
    return "".join(rng.choice(_POETIC_CHARS) for _ in range(length))


def biology_name(rng: random.Random) -> str:
    prefix = rng.choice(_BIO_PREFIX)
    base = rng.choice(_BIO_BASE)
    if rng.random() < 0.4:
        base = base + rng.choice(_BIO_BASE)
    return prefix + base


def food_name(rng: random.Random) -> str:
    prefix = rng.choice(_FOOD_PREFIX)
    if rng.random() < 0.4:
        prefix = prefix + rng.choice(_FOOD_PREFIX)
    return prefix + rng.choice(_FOOD_BASE)


def generate_name(rng: random.Random, kind: str, concept: str) -> str:
    """Dispatch to the kind-specific generator."""
    if kind == "person":
        return person_name(rng)
    if kind == "organisation":
        return organisation_name(rng, concept)
    if kind == "place":
        return place_name(rng, concept)
    if kind == "work":
        return work_title(rng)
    if kind == "biology":
        return biology_name(rng)
    if kind == "food":
        return food_name(rng)
    raise ValueError(f"unknown domain kind {kind!r}")
