"""Encyclopedia substrate: CN-DBpedia-shaped pages and the synthetic world.

The paper's input is a CN-DBpedia dump (2017-05-20) with four information
sources per page: bracket, abstract, infobox and tag (Figure 1).  That dump
is proprietary-scale and offline-unavailable, so this subpackage provides

- the page/dump data model (:mod:`repro.encyclopedia.model`),
- JSONL persistence and corpus assembly (:mod:`repro.encyclopedia.corpus`),
- :class:`~repro.encyclopedia.synthesis.world.SyntheticWorld`, a
  deterministic generator that samples a ground-truth ontology and renders
  it into pages with calibrated per-source noise.  The world keeps the
  ground truth, which replaces the paper's manual precision labelling.
"""

from repro.encyclopedia.corpus import load_dump, save_dump
from repro.encyclopedia.model import (
    DumpDiff,
    EncyclopediaDump,
    EncyclopediaPage,
    Triple,
    diff_dumps,
)
from repro.encyclopedia.synthesis.noise import NoiseConfig
from repro.encyclopedia.synthesis.world import SyntheticWorld

__all__ = [
    "DumpDiff",
    "EncyclopediaDump",
    "EncyclopediaPage",
    "NoiseConfig",
    "SyntheticWorld",
    "Triple",
    "diff_dumps",
    "load_dump",
    "save_dump",
]
