"""Token vocabulary with reserved symbols and extended-vocab OOV handling.

The copy mechanism operates over an *extended* vocabulary: source words
missing from the fixed vocabulary get temporary ids ``V, V+1, ...`` local
to one example, so the decoder can emit them verbatim.  This is exactly
how the paper's CopyNet handles out-of-vocabulary hypernym words that
appear in the abstract.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.errors import VocabularyError

PAD, BOS, EOS, UNK = 0, 1, 2, 3
RESERVED = ("<pad>", "<bos>", "<eos>", "<unk>")


class Vocabulary:
    """Frequency-built token vocabulary."""

    def __init__(self, tokens: Sequence[str]) -> None:
        self._itos: list[str] = list(RESERVED)
        self._stoi: dict[str, int] = {t: i for i, t in enumerate(RESERVED)}
        for token in tokens:
            if token in self._stoi:
                raise VocabularyError(f"duplicate token {token!r}")
            self._stoi[token] = len(self._itos)
            self._itos.append(token)

    @classmethod
    def build(
        cls,
        corpus: Iterable[Sequence[str]],
        max_size: int = 20000,
        min_freq: int = 1,
    ) -> "Vocabulary":
        """Build from token sequences, most frequent first."""
        if max_size <= 0:
            raise VocabularyError(f"max_size must be positive, got {max_size}")
        counts: Counter[str] = Counter()
        for sentence in corpus:
            counts.update(sentence)
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = [w for w, c in ranked if c >= min_freq][: max_size - len(RESERVED)]
        return cls(kept)

    def __len__(self) -> int:
        return len(self._itos)

    def __contains__(self, token: str) -> bool:
        return token in self._stoi

    def id_of(self, token: str) -> int:
        return self._stoi.get(token, UNK)

    def token_of(self, index: int) -> str:
        if 0 <= index < len(self._itos):
            return self._itos[index]
        raise VocabularyError(f"id {index} outside vocabulary of {len(self)}")

    def encode(self, tokens: Sequence[str], add_eos: bool = False) -> list[int]:
        ids = [self.id_of(t) for t in tokens]
        if add_eos:
            ids.append(EOS)
        return ids

    def decode(self, ids: Sequence[int], stop_at_eos: bool = True) -> list[str]:
        tokens: list[str] = []
        for index in ids:
            if stop_at_eos and index == EOS:
                break
            if index in (PAD, BOS):
                continue
            tokens.append(self.token_of(index))
        return tokens

    # -- extended vocabulary for the copy mechanism -----------------------

    def encode_extended(
        self, source_tokens: Sequence[str]
    ) -> tuple[list[int], dict[str, int]]:
        """Source ids where OOV words get temporary ids ≥ len(vocab).

        Returns ``(ids, oov_map)``; ``oov_map`` maps each OOV surface to
        its temporary id, in first-occurrence order.
        """
        ids: list[int] = []
        oov_map: dict[str, int] = {}
        for token in source_tokens:
            index = self._stoi.get(token)
            if index is None:
                if token not in oov_map:
                    oov_map[token] = len(self) + len(oov_map)
                index = oov_map[token]
            ids.append(index)
        return ids, oov_map

    def decode_extended(
        self, ids: Sequence[int], oov_map: dict[str, int], stop_at_eos: bool = True
    ) -> list[str]:
        """Decode ids that may reference the example-local OOV slots."""
        reverse = {index: token for token, index in oov_map.items()}
        tokens: list[str] = []
        for index in ids:
            if stop_at_eos and index == EOS:
                break
            if index in (PAD, BOS):
                continue
            if index < len(self):
                tokens.append(self.token_of(index))
            elif index in reverse:
                tokens.append(reverse[index])
            else:
                tokens.append(RESERVED[UNK])
        return tokens

    def target_ids_extended(
        self, target_tokens: Sequence[str], oov_map: dict[str, int]
    ) -> list[int]:
        """Target ids using the source's OOV slots, EOS-terminated."""
        ids: list[int] = []
        for token in target_tokens:
            index = self._stoi.get(token)
            if index is None:
                index = oov_map.get(token, UNK)
            ids.append(index)
        ids.append(EOS)
        return ids
