"""Adam optimiser and the distant-supervision training loop."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.neural.autograd import Tensor
from repro.neural.dataset import Seq2SeqDataset, encode_batch
from repro.neural.model import CopyNetSeq2Seq
from repro.neural.vocab import Vocabulary


class Adam:
    """Adam over a named-parameter dict (Kingma & Ba 2015)."""

    def __init__(
        self,
        parameters: dict[str, Tensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip_norm: float | None = 5.0,
    ) -> None:
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self._params = parameters
        self._lr = lr
        self._beta1 = beta1
        self._beta2 = beta2
        self._eps = eps
        self._clip_norm = clip_norm
        self._m = {k: np.zeros_like(p.data) for k, p in parameters.items()}
        self._v = {k: np.zeros_like(p.data) for k, p in parameters.items()}
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        grads = {
            name: param.grad
            for name, param in self._params.items()
            if param.grad is not None
        }
        if self._clip_norm is not None and grads:
            total = float(
                np.sqrt(sum(float((g * g).sum()) for g in grads.values()))
            )
            if total > self._clip_norm:
                scale = self._clip_norm / (total + 1e-12)
                grads = {name: g * scale for name, g in grads.items()}
        for name, grad in grads.items():
            param = self._params[name]
            m = self._m[name] = self._beta1 * self._m[name] + (1 - self._beta1) * grad
            v = self._v[name] = (
                self._beta2 * self._v[name] + (1 - self._beta2) * grad * grad
            )
            m_hat = m / (1 - self._beta1 ** self._t)
            v_hat = v / (1 - self._beta2 ** self._t)
            param.data -= self._lr * m_hat / (np.sqrt(v_hat) + self._eps)

    def zero_grad(self) -> None:
        for param in self._params.values():
            param.zero_grad()


@dataclass
class TrainingConfig:
    """Hyper-parameters of the distant-supervision training run."""

    epochs: int = 5
    batch_size: int = 16
    lr: float = 2e-3
    max_src_len: int = 30
    max_tgt_len: int = 4
    shuffle_seed: int = 0

    def validate(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise TrainingError("epochs and batch_size must be positive")
        if self.max_src_len <= 0 or self.max_tgt_len <= 0:
            raise TrainingError("sequence limits must be positive")


@dataclass
class TrainingReport:
    """Loss trajectory of one training run."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise TrainingError("no epochs were run")
        return self.epoch_losses[-1]

    @property
    def improved(self) -> bool:
        return (
            len(self.epoch_losses) >= 2
            and self.epoch_losses[-1] < self.epoch_losses[0]
        )


class Trainer:
    """Mini-batch trainer for :class:`CopyNetSeq2Seq`."""

    def __init__(
        self,
        model: CopyNetSeq2Seq,
        vocab: Vocabulary,
        config: TrainingConfig | None = None,
    ) -> None:
        self.model = model
        self.vocab = vocab
        self.config = config if config is not None else TrainingConfig()
        self.config.validate()
        self._optimizer = Adam(model.parameters(), lr=self.config.lr)

    def fit(self, dataset: Seq2SeqDataset) -> TrainingReport:
        if len(dataset) == 0:
            raise TrainingError("cannot train on an empty dataset")
        rng = random.Random(self.config.shuffle_seed)
        order = list(range(len(dataset)))
        report = TrainingReport()
        for _ in range(self.config.epochs):
            rng.shuffle(order)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, len(order), self.config.batch_size):
                indices = order[start:start + self.config.batch_size]
                examples = [dataset[i] for i in indices]
                batch = encode_batch(
                    examples,
                    self.vocab,
                    max_src_len=self.config.max_src_len,
                    max_tgt_len=self.config.max_tgt_len,
                )
                self._optimizer.zero_grad()
                loss = self.model.loss(
                    batch.src_ids,
                    batch.src_extended,
                    batch.src_mask,
                    batch.n_oov,
                    batch.target_ids,
                    batch.target_mask,
                )
                loss.backward()
                self._optimizer.step()
                epoch_loss += float(loss.data)
                n_batches += 1
            report.epoch_losses.append(epoch_loss / max(n_batches, 1))
        return report
