"""GRU encoder-decoder with attention and a generate-vs-copy gate.

This is the neural generator of the paper's abstract source: the encoder
reads the (segmented) abstract, the decoder emits hypernym tokens.  The
copy mechanism follows the pointer-generator formulation of CopyNet's
idea: at each step the output distribution is a gated mixture

    p(w) = (1 - g) · p_generate(w)  +  g · Σ_{i : x_i = w} attention_i

over an *extended* vocabulary in which source-only words own temporary
ids, so out-of-vocabulary hypernyms present in the abstract can be
produced verbatim — the exact OOV failure the paper adopts CopyNet for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.neural import autograd as ag
from repro.neural.autograd import Tensor
from repro.neural.layers import Dense, Embedding, GRUCell, Module
from repro.neural.vocab import BOS, EOS, Vocabulary


@dataclass
class EncodedBatch:
    """Everything the decoder needs about one encoded source batch."""

    states: list[Tensor]          # T tensors of shape (B, H)
    final_state: Tensor           # (B, H)
    src_extended: np.ndarray      # (B, T) ids over the extended vocabulary
    src_mask: np.ndarray          # (B, T) 1.0 on real tokens, 0.0 on padding
    n_oov: int                    # width of the extended-vocabulary tail


class CopyNetSeq2Seq(Module):
    """Seq2seq with attention + copy gate, trained by distant supervision."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_dim: int = 48,
        seed: int = 0,
    ) -> None:
        if vocab_size <= 4:
            raise TrainingError(f"vocabulary too small: {vocab_size}")
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.embedding = Embedding(rng, vocab_size, embed_dim)
        self.encoder = GRUCell(rng, embed_dim, hidden_dim)
        self.decoder = GRUCell(rng, embed_dim, hidden_dim)
        self.att_proj = Dense(rng, hidden_dim, hidden_dim, bias=False)
        self.gen_out = Dense(rng, 2 * hidden_dim, vocab_size)
        self.copy_gate = Dense(rng, 2 * hidden_dim, 1)

    # -- encoding -----------------------------------------------------------

    def encode(
        self,
        src_ids: np.ndarray,
        src_extended: np.ndarray,
        src_mask: np.ndarray,
        n_oov: int,
    ) -> EncodedBatch:
        batch, length = src_ids.shape
        state = self.encoder.initial_state(batch)
        states: list[Tensor] = []
        for t in range(length):
            x_t = self.embedding(src_ids[:, t])
            new_state = self.encoder(x_t, state)
            mask_t = Tensor(src_mask[:, t:t + 1])
            # padded positions keep the previous state
            state = ag.add(state, ag.mul(mask_t, ag.sub(new_state, state)))
            states.append(state)
        return EncodedBatch(
            states=states,
            final_state=state,
            src_extended=src_extended,
            src_mask=src_mask,
            n_oov=n_oov,
        )

    # -- one decoder step --------------------------------------------------------

    def _attention(
        self, encoded: EncodedBatch, state: Tensor
    ) -> tuple[Tensor, Tensor]:
        """Return (attention weights (B,T), context (B,H))."""
        projected = self.att_proj(state)
        columns: list[Tensor] = []
        for t, enc_state in enumerate(encoded.states):
            score = ag.sum_axis(ag.mul(enc_state, projected), axis=1, keepdims=True)
            bias = (encoded.src_mask[:, t:t + 1] - 1.0) * 1e9
            columns.append(ag.add(score, Tensor(bias)))
        scores = ag.concat(columns, axis=1)
        attention = ag.softmax(scores, axis=-1)
        context: Tensor | None = None
        for t, enc_state in enumerate(encoded.states):
            weighted = ag.mul(ag.slice_cols(attention, t, t + 1), enc_state)
            context = weighted if context is None else ag.add(context, weighted)
        return attention, context

    def decode_step(
        self, encoded: EncodedBatch, state: Tensor, prev_ids: np.ndarray
    ) -> tuple[Tensor, Tensor]:
        """One step: returns (p_final over extended vocab (B, V+oov), state)."""
        x = self.embedding(prev_ids)
        state = self.decoder(x, state)
        attention, context = self._attention(encoded, state)
        features = ag.concat([state, context], axis=1)
        p_generate = ag.softmax(self.gen_out(features), axis=-1)
        gate = ag.sigmoid(self.copy_gate(features))
        extended_size = self.vocab_size + encoded.n_oov
        p_copy = ag.scatter_add_cols(
            ag.mul(attention, Tensor(encoded.src_mask)),
            encoded.src_extended,
            extended_size,
        )
        keep = ag.scalar_mul(ag.sub(gate, Tensor(np.ones(1))), -1.0)  # 1 - g
        p_final = ag.add(
            ag.mul(keep, ag.pad_cols(p_generate, encoded.n_oov)),
            ag.mul(gate, p_copy),
        )
        return p_final, state

    # -- training loss ---------------------------------------------------------------

    def loss(
        self,
        src_ids: np.ndarray,
        src_extended: np.ndarray,
        src_mask: np.ndarray,
        n_oov: int,
        target_ids: np.ndarray,
        target_mask: np.ndarray,
    ) -> Tensor:
        """Mean negative log-likelihood of the target tokens."""
        encoded = self.encode(src_ids, src_extended, src_mask, n_oov)
        state = encoded.final_state
        batch, target_len = target_ids.shape
        prev = np.full(batch, BOS, dtype=np.int64)
        total: Tensor | None = None
        for t in range(target_len):
            p_final, state = self.decode_step(encoded, state, prev)
            step_nll = ag.scalar_mul(
                ag.log(ag.gather_cols(p_final, target_ids[:, t])), -1.0
            )
            masked = ag.mul(step_nll, Tensor(target_mask[:, t]))
            step_total = ag.sum_axis(masked, axis=0)
            total = step_total if total is None else ag.add(total, step_total)
            prev = target_ids[:, t]
        n_tokens = float(target_mask.sum())
        if n_tokens == 0:
            raise TrainingError("batch contains no target tokens")
        return ag.scalar_mul(total, 1.0 / n_tokens)

    # -- inference ----------------------------------------------------------------------

    def generate(
        self,
        vocab: Vocabulary,
        source_tokens: list[str],
        max_len: int = 6,
    ) -> list[str]:
        """Greedy decoding of one source sequence into hypernym tokens."""
        tokens, _ = self.generate_with_confidence(vocab, source_tokens, max_len)
        return tokens

    def generate_with_confidence(
        self,
        vocab: Vocabulary,
        source_tokens: list[str],
        max_len: int = 6,
    ) -> tuple[list[str], float]:
        """Greedy decoding plus the minimum step probability.

        The confidence (worst step probability of the emitted tokens) lets
        callers suppress low-certainty hypernyms — the generation module's
        knob for keeping the abstract source's precision useful.
        """
        if not source_tokens:
            return [], 0.0
        src_plain = np.array([vocab.encode(source_tokens)], dtype=np.int64)
        ext_ids, oov_map = vocab.encode_extended(source_tokens)
        src_extended = np.array([ext_ids], dtype=np.int64)
        src_mask = np.ones_like(src_plain, dtype=np.float64)
        encoded = self.encode(src_plain, src_extended, src_mask, len(oov_map))
        state = encoded.final_state
        prev = np.array([BOS], dtype=np.int64)
        output: list[int] = []
        confidence = 1.0
        for _ in range(max_len):
            p_final, state = self.decode_step(encoded, state, prev)
            next_id = int(np.argmax(p_final.data[0]))
            if next_id == EOS:
                break
            confidence = min(confidence, float(p_final.data[0, next_id]))
            output.append(next_id)
            prev = np.array([next_id], dtype=np.int64)
        if not output:
            return [], 0.0
        return vocab.decode_extended(output, oov_map), confidence
