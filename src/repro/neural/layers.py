"""Trainable layers built on the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.neural import autograd as ag
from repro.neural.autograd import Tensor
from repro.neural.vocab import UNK


def xavier(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class Module:
    """Base class collecting named parameters recursively."""

    def parameters(self) -> dict[str, Tensor]:
        params: dict[str, Tensor] = {}
        for name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                params[name] = value
            elif isinstance(value, Module):
                for sub_name, sub_value in value.parameters().items():
                    params[f"{name}.{sub_name}"] = sub_value
        return params

    def zero_grad(self) -> None:
        for param in self.parameters().values():
            param.zero_grad()


class Embedding(Module):
    """Token-id → dense-vector lookup table."""

    def __init__(self, rng: np.random.Generator, n_tokens: int, dim: int) -> None:
        self.weight = Tensor(
            rng.normal(0.0, 0.1, size=(n_tokens, dim)), requires_grad=True
        )
        self.n_tokens = n_tokens
        self.dim = dim

    def __call__(self, token_ids: np.ndarray) -> Tensor:
        # Extended-vocabulary ids (copy-mechanism OOV slots) have no row in
        # the table; they are looked up as <unk>.
        ids = np.asarray(token_ids, dtype=np.int64)
        ids = np.where(ids >= self.n_tokens, UNK, ids)
        return ag.rows(self.weight, ids)


class Dense(Module):
    """Affine layer y = xW + b."""

    def __init__(
        self, rng: np.random.Generator, n_in: int, n_out: int, bias: bool = True
    ) -> None:
        self.weight = Tensor(xavier(rng, n_in, n_out), requires_grad=True)
        self.bias = Tensor(np.zeros((1, n_out)), requires_grad=True) if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = ag.matmul(x, self.weight)
        if self.bias is not None:
            out = ag.add(out, self.bias)
        return out


class GRUCell(Module):
    """Gated recurrent unit: one step over a batch.

    Update/reset gates use the standard formulation; input and hidden
    projections are kept as separate matrices for clarity.
    """

    def __init__(self, rng: np.random.Generator, n_in: int, n_hidden: int) -> None:
        self.w_z = Dense(rng, n_in + n_hidden, n_hidden)
        self.w_r = Dense(rng, n_in + n_hidden, n_hidden)
        self.w_h = Dense(rng, n_in + n_hidden, n_hidden)
        self.n_hidden = n_hidden

    def __call__(self, x: Tensor, h: Tensor) -> Tensor:
        xh = ag.concat([x, h], axis=1)
        z = ag.sigmoid(self.w_z(xh))
        r = ag.sigmoid(self.w_r(xh))
        xrh = ag.concat([x, ag.mul(r, h)], axis=1)
        candidate = ag.tanh(self.w_h(xrh))
        one_minus_z = ag.scalar_mul(ag.sub(z, Tensor(np.ones(1))), -1.0)
        return ag.add(ag.mul(one_minus_z, h), ag.mul(z, candidate))

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.n_hidden)))
