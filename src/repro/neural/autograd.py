"""Minimal reverse-mode automatic differentiation on numpy arrays.

Only the operations the CopyNet model needs are implemented, each as a
function building the backward closure explicitly.  Gradients accumulate
into ``Tensor.grad``; ``Tensor.backward()`` runs a topological sweep.

Broadcasting is supported for ``add``/``mul``/``sub`` via gradient
un-broadcasting, which is what the gate/attention arithmetic needs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


class Tensor:
    """A numpy array with gradient bookkeeping."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: np.ndarray | float | list,
        requires_grad: bool = False,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._backward: Callable[[], None] | None = None
        self._parents: tuple["Tensor", ...] = ()

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self) -> None:
        """Back-propagate from this (scalar) tensor."""
        if self.data.size != 1:
            raise ValueError(
                f"backward() needs a scalar loss, got shape {self.shape}"
            )
        topo: list[Tensor] = []
        seen: set[int] = set()

        def build(node: Tensor) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None:
                node._backward()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward: Callable[[Tensor], Callable[[], None]],
) -> Tensor:
    """Create a result tensor wired to *parents* when grads are needed."""
    out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
    if out.requires_grad:
        out._parents = tuple(parents)
        out._backward = backward(out)
    return out


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum *grad* down to *shape* (inverse of numpy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# --- arithmetic -------------------------------------------------------------

def add(a: Tensor, b: Tensor) -> Tensor:
    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(out.grad, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(out.grad, b.shape))
        return run

    return _make(a.data + b.data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(out.grad, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-out.grad, b.shape))
        return run

    return _make(a.data - b.data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(out.grad * b.data, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(out.grad * a.data, b.shape))
        return run

    return _make(a.data * b.data, (a, b), backward)


def scalar_mul(a: Tensor, value: float) -> Tensor:
    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(out.grad * value)
        return run

    return _make(a.data * value, (a,), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(out.grad @ b.data.T)
            if b.requires_grad:
                b._accumulate(a.data.T @ out.grad)
        return run

    return _make(a.data @ b.data, (a, b), backward)


# --- nonlinearities ----------------------------------------------------------

def sigmoid(a: Tensor) -> Tensor:
    value = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60, 60)))

    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(out.grad * value * (1.0 - value))
        return run

    return _make(value, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    value = np.tanh(a.data)

    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(out.grad * (1.0 - value * value))
        return run

    return _make(value, (a,), backward)


def log(a: Tensor, eps: float = 1e-12) -> Tensor:
    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(out.grad / (a.data + eps))
        return run

    return _make(np.log(a.data + eps), (a,), backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)

    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                dot = (out.grad * value).sum(axis=axis, keepdims=True)
                a._accumulate(value * (out.grad - dot))
        return run

    return _make(value, (a,), backward)


# --- shape ops ------------------------------------------------------------------

def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(out: Tensor):
        def run() -> None:
            offset = 0
            for tensor, size in zip(tensors, sizes):
                if tensor.requires_grad:
                    index = [slice(None)] * out.grad.ndim
                    index[axis] = slice(offset, offset + size)
                    tensor._accumulate(out.grad[tuple(index)])
                offset += size
        return run

    return _make(np.concatenate([t.data for t in tensors], axis=axis),
                 tuple(tensors), backward)


def rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Embedding lookup: select rows of *table* (2-D) by integer indices."""
    idx = np.asarray(indices, dtype=np.int64)

    def backward(out: Tensor):
        def run() -> None:
            if table.requires_grad:
                grad = np.zeros_like(table.data)
                np.add.at(grad, idx, out.grad)
                table._accumulate(grad)
        return run

    return _make(table.data[idx], (table,), backward)


def mean(a: Tensor) -> Tensor:
    n = a.data.size

    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(np.full_like(a.data, out.grad.item() / n))
        return run

    return _make(np.asarray(a.data.mean()), (a,), backward)


def sum_axis(a: Tensor, axis: int, keepdims: bool = False) -> Tensor:
    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                grad = out.grad
                if not keepdims:
                    grad = np.expand_dims(grad, axis)
                a._accumulate(np.broadcast_to(grad, a.shape).copy())
        return run

    return _make(a.data.sum(axis=axis, keepdims=keepdims), (a,), backward)


def gather_cols(a: Tensor, col_indices: np.ndarray) -> Tensor:
    """Pick one column per row: a[i, col_indices[i]] → shape (B,)."""
    idx = np.asarray(col_indices, dtype=np.int64)
    rows_idx = np.arange(a.data.shape[0])

    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                grad = np.zeros_like(a.data)
                grad[rows_idx, idx] = out.grad
                a._accumulate(grad)
        return run

    return _make(a.data[rows_idx, idx], (a,), backward)


def scatter_add_cols(
    values: Tensor, col_indices: np.ndarray, n_cols: int
) -> Tensor:
    """Scatter row-wise values into a zero matrix of width *n_cols*.

    ``out[i, col_indices[i, j]] += values[i, j]`` — the copy-distribution
    projection from source positions onto the extended vocabulary.
    """
    idx = np.asarray(col_indices, dtype=np.int64)
    batch, width = values.data.shape
    out_data = np.zeros((batch, n_cols))
    batch_idx = np.repeat(np.arange(batch), width)
    np.add.at(out_data, (batch_idx, idx.reshape(-1)), values.data.reshape(-1))

    def backward(out: Tensor):
        def run() -> None:
            if values.requires_grad:
                grad = out.grad[batch_idx, idx.reshape(-1)].reshape(batch, width)
                values._accumulate(grad)
        return run

    return _make(out_data, (values,), backward)


def pad_cols(a: Tensor, n_extra: int) -> Tensor:
    """Append *n_extra* zero columns (extend generation probs to OOV slots)."""
    if n_extra < 0:
        raise ValueError(f"n_extra must be >= 0, got {n_extra}")
    batch = a.data.shape[0]

    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                a._accumulate(out.grad[:, : a.data.shape[1]])
        return run

    padded = np.concatenate([a.data, np.zeros((batch, n_extra))], axis=1)
    return _make(padded, (a,), backward)


def slice_cols(a: Tensor, start: int, stop: int) -> Tensor:
    """Column slice a[:, start:stop] with gradient routing."""

    def backward(out: Tensor):
        def run() -> None:
            if a.requires_grad:
                grad = np.zeros_like(a.data)
                grad[:, start:stop] = out.grad
                a._accumulate(grad)
        return run

    return _make(a.data[:, start:stop], (a,), backward)


def stack_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Stack (B, d) tensors into (T, B, d)."""

    def backward(out: Tensor):
        def run() -> None:
            for t_index, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(out.grad[t_index])
        return run

    return _make(np.stack([t.data for t in tensors]), tuple(tensors), backward)
