"""Numpy neural substrate for the abstract→concept generation source.

The paper uses an encoder-decoder with a copy mechanism (CopyNet, Gu et
al. 2016) to generate hypernyms from entity abstracts, trained by distant
supervision on bracket-derived isA pairs.  No deep-learning framework is
assumed here; this subpackage implements

- a minimal reverse-mode autograd engine (:mod:`repro.neural.autograd`),
- embedding/GRU/dense layers (:mod:`repro.neural.layers`),
- a GRU encoder-decoder with attention and a generate-vs-copy gate
  (:mod:`repro.neural.model`) — the pointer-generator formulation of the
  copy mechanism, which preserves CopyNet's ability to emit
  out-of-vocabulary words verbatim from the source,
- Adam + a training loop (:mod:`repro.neural.training`).
"""

from repro.neural.autograd import Tensor
from repro.neural.model import CopyNetSeq2Seq
from repro.neural.training import Adam, Trainer, TrainingConfig
from repro.neural.vocab import Vocabulary

__all__ = [
    "Adam",
    "CopyNetSeq2Seq",
    "Tensor",
    "Trainer",
    "TrainingConfig",
    "Vocabulary",
]
