"""Seq2seq examples and padded batch encoding.

The distant-supervision dataset of the paper pairs an entity's abstract
(source) with a bracket-derived hypernym (target).  This module holds the
generic example/batch machinery; the dataset *builder* lives with the
generation module (:mod:`repro.core.generation.neural_gen`) because it
depends on the bracket extractor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.neural.vocab import PAD, Vocabulary


@dataclass(frozen=True)
class Seq2SeqExample:
    """One training pair: segmented source and target token sequences."""

    source: tuple[str, ...]
    target: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise TrainingError("examples need non-empty source and target")


class Seq2SeqDataset:
    """A list-backed dataset of :class:`Seq2SeqExample`."""

    def __init__(self, examples: Sequence[Seq2SeqExample]) -> None:
        self._examples = list(examples)

    def __len__(self) -> int:
        return len(self._examples)

    def __getitem__(self, index: int) -> Seq2SeqExample:
        return self._examples[index]

    def __iter__(self):
        return iter(self._examples)

    def sources(self) -> list[tuple[str, ...]]:
        return [e.source for e in self._examples]

    def split(self, ratio: float, seed: int = 0) -> tuple["Seq2SeqDataset", "Seq2SeqDataset"]:
        """Deterministic train/validation split."""
        if not 0.0 < ratio < 1.0:
            raise TrainingError(f"split ratio must be in (0, 1), got {ratio}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self._examples))
        cut = int(len(order) * ratio)
        first = [self._examples[i] for i in order[:cut]]
        second = [self._examples[i] for i in order[cut:]]
        return Seq2SeqDataset(first), Seq2SeqDataset(second)


@dataclass
class EncodedBatchArrays:
    """Padded numpy views of a batch, ready for the model."""

    src_ids: np.ndarray        # (B, S) fixed-vocabulary ids (OOV → UNK)
    src_extended: np.ndarray   # (B, S) extended-vocabulary ids
    src_mask: np.ndarray       # (B, S)
    n_oov: int
    target_ids: np.ndarray     # (B, T) extended ids, EOS-terminated
    target_mask: np.ndarray    # (B, T)


def encode_batch(
    examples: Sequence[Seq2SeqExample],
    vocab: Vocabulary,
    max_src_len: int = 30,
    max_tgt_len: int = 4,
) -> EncodedBatchArrays:
    """Encode and pad a batch with a shared extended-vocabulary width."""
    if not examples:
        raise TrainingError("cannot encode an empty batch")
    batch = len(examples)
    src_len = min(max(len(e.source) for e in examples), max_src_len)
    tgt_len = min(max(len(e.target) for e in examples) + 1, max_tgt_len + 1)

    src_ids = np.full((batch, src_len), PAD, dtype=np.int64)
    src_extended = np.full((batch, src_len), PAD, dtype=np.int64)
    src_mask = np.zeros((batch, src_len), dtype=np.float64)
    target_ids = np.full((batch, tgt_len), PAD, dtype=np.int64)
    target_mask = np.zeros((batch, tgt_len), dtype=np.float64)
    n_oov = 0

    for row, example in enumerate(examples):
        source = list(example.source)[:src_len]
        plain = vocab.encode(source)
        extended, oov_map = vocab.encode_extended(source)
        n_oov = max(n_oov, len(oov_map))
        src_ids[row, : len(plain)] = plain
        src_extended[row, : len(extended)] = extended
        src_mask[row, : len(plain)] = 1.0
        target = vocab.target_ids_extended(
            list(example.target)[: tgt_len - 1], oov_map
        )
        target_ids[row, : len(target)] = target
        target_mask[row, : len(target)] = 1.0

    return EncodedBatchArrays(
        src_ids=src_ids,
        src_extended=src_extended,
        src_mask=src_mask,
        n_oov=n_oov,
        target_ids=target_ids,
        target_mask=target_mask,
    )
