"""Noisy cross-language translation channel for Probase-Tran.

The paper builds Probase-Tran by running Google Translate over the
English Probase and then filtering.  Offline, we model the *error
channel* of that process instead of the translator itself: sense
ambiguity is the dominant failure (English "star" → 星星 instead of
明星), followed by transliteration garbling of entity names and outright
untranslatable terms.  The channel's parameters are calibrated so the
filtered result lands in the paper's ~55% precision band.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.nlp.base_lexicon import PLACE_SEEDS, THEMATIC_SEEDS

# Wrong-sense translations per concept: plausible mistranslations a
# word-level EN→ZH dictionary would pick (verbal readings, topic words,
# homograph senses).
_SENSE_CONFUSIONS: dict[str, tuple[str, ...]] = {
    "歌手": ("唱歌", "歌唱"),
    "演员": ("表演", "演出"),
    "明星": ("星星", "恒星"),
    "作家": ("写作", "著作"),
    "画家": ("绘画", "油漆工"),
    "导演": ("指导", "方向"),
    "公司": ("陪伴", "连队"),
    "乐队": ("带子", "波段"),
    "银行": ("河岸", "岸边"),
    "球队": ("队伍", "团队"),
    "电影": ("胶片", "薄膜"),
    "小说": ("新颖", "虚构"),
    "歌曲": ("歌唱", "曲子"),
    "游戏": ("比赛", "猎物"),
    "水果": ("果实", "成果"),
    "植物": ("工厂", "厂房"),
    "动物": ("野兽", "牲畜"),
    "城市": ("都会", "城"),
    "国家": ("乡下", "州"),
    "大学": ("学院派", "高校界"),
}
_TRANSLITERATION_TAIL = "斯尔姆顿贝特克罗"


@dataclass
class TranslationConfig:
    """Error rates of the simulated EN→ZH channel."""

    p_sense_error: float = 0.38       # concept picks a wrong homograph sense
    p_thematic_drift: float = 0.10    # concept degrades to a topic word
    p_ne_confusion: float = 0.05      # concept becomes a place name
    p_entity_garbled: float = 0.24    # entity name transliterated wrongly
    p_drop: float = 0.08              # untranslatable pair, dropped
    seed: int = 0

    def validate(self) -> None:
        for name in (
            "p_sense_error", "p_thematic_drift", "p_ne_confusion",
            "p_entity_garbled", "p_drop",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


class NoisyTranslator:
    """Applies the calibrated error channel to (entity, concept) pairs."""

    def __init__(self, config: TranslationConfig | None = None) -> None:
        self.config = config if config is not None else TranslationConfig()
        self.config.validate()
        self._rng = random.Random(self.config.seed)

    def translate_concept(self, concept: str) -> str | None:
        """Translate a concept surface; None means untranslatable."""
        roll = self._rng.random()
        config = self.config
        if roll < config.p_drop:
            return None
        roll -= config.p_drop
        if roll < config.p_sense_error:
            confusions = _SENSE_CONFUSIONS.get(concept)
            if confusions:
                return self._rng.choice(confusions)
            return concept + "物"  # generic wrong literal rendering
        roll -= config.p_sense_error
        if roll < config.p_thematic_drift:
            return self._rng.choice(THEMATIC_SEEDS)
        roll -= config.p_thematic_drift
        if roll < config.p_ne_confusion:
            return self._rng.choice(PLACE_SEEDS)
        return concept

    def translate_entity(self, name: str) -> str | None:
        roll = self._rng.random()
        config = self.config
        if roll < config.p_drop:
            return None
        if roll < config.p_drop + config.p_entity_garbled:
            tail = self._rng.choice(_TRANSLITERATION_TAIL)
            keep = max(len(name) - 1, 1)
            return name[:keep] + tail
        return name

    def translate_pair(
        self, entity: str, concept: str
    ) -> tuple[str, str] | None:
        """Translate one isA pair; None when either side is dropped."""
        translated_entity = self.translate_entity(entity)
        if translated_entity is None:
            return None
        translated_concept = self.translate_concept(concept)
        if translated_concept is None:
            return None
        if translated_entity == translated_concept:
            return None
        return translated_entity, translated_concept
