"""Bigcilin baseline (Fu et al. 2013).

"Bigcilin also extracts isA relations from multiple sources, but its
precision is worse than ours since we use the verification module to
further improve the precision."  The model here is therefore CN-Probase's
generation module *without* the verification module, plus the looser
choices typical of open hypernym discovery:

- brackets are mined with a naive suffix heuristic rather than the PMI
  separation algorithm,
- every infobox predicate whose value recurs as a frequent hypernym
  contributes, not just curated implicit-isA predicates,
- tags get only the cheap cleaning the original system applies (a topic
  stop-list), not CN-Probase's verification module.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.core.generation.tags import TagExtractor
from repro.core.verification.thematic import THEMATIC_WORDS
from repro.encyclopedia.model import EncyclopediaDump
from repro.errors import SegmentationError
from repro.nlp.lexicon import Lexicon
from repro.nlp.ner import NamedEntityRecognizer
from repro.nlp.segmentation import Segmenter
from repro.nlp.text import is_cjk_word, split_phrases
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@dataclass
class BigcilinConfig:
    """Looseness knobs of the multi-source, no-verification build.

    ``page_fraction`` models Bigcilin's smaller reach: it covers 9M
    entities against the 15M of the encyclopedia CN-Probase processes.
    """

    page_fraction: float = 0.6
    min_hypernym_frequency: int = 12  # for infobox value admission
    min_tag_support: int = 4          # hypernym-support rank proxy for tags
    max_hypernym_len: int = 6
    selection_seed: int = 29


class Bigcilin:
    """Multi-source extraction without a verification module."""

    def __init__(
        self,
        config: BigcilinConfig | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        self.config = config if config is not None else BigcilinConfig()
        self._lexicon = lexicon

    def build(self, dump: EncyclopediaDump) -> Taxonomy:
        lexicon = self._lexicon if self._lexicon is not None else self._harvest(dump)
        segmenter = Segmenter(lexicon)
        self._recognizer = NamedEntityRecognizer(Lexicon.base())
        taxonomy = Taxonomy(name="Bigcilin")

        # Frequency prior over hypernym surfaces, from tags.
        tag_counts: Counter[str] = Counter()
        for page in dump:
            tag_counts.update(set(page.tags))

        rng = random.Random(self.config.selection_seed)
        for page in dump:
            if rng.random() > self.config.page_fraction:
                continue
            hypernyms: list[str] = []
            # tags: topic stop-list plus a hypernym-support rank (Fu et
            # al. rank hypernym candidates by corpus support)
            hypernyms.extend(
                r.hypernym
                for r in TagExtractor().extract_from_page(page)
                if r.hypernym not in THEMATIC_WORDS
                and tag_counts[r.hypernym] >= self.config.min_tag_support
            )
            # bracket, naive suffix heuristic (no PMI model)
            if page.bracket:
                for phrase in split_phrases(page.bracket):
                    hypernyms.extend(self._suffix_hypernyms(segmenter, phrase))
            # infobox, loose: any CJK value that is a frequent tag surface
            # (the topic stop-list applies here too)
            for triple in page.infobox:
                value = triple.value.strip()
                if (
                    is_cjk_word(value)
                    and 2 <= len(value) <= self.config.max_hypernym_len
                    and value not in THEMATIC_WORDS
                    and tag_counts[value] >= self.config.min_hypernym_frequency
                ):
                    hypernyms.append(value)

            kept = [h for h in dict.fromkeys(hypernyms) if h != page.title]
            if not kept:
                continue
            taxonomy.add_entity(Entity(page_id=page.page_id, name=page.title))
            for hypernym in kept:
                taxonomy.add_relation(
                    IsARelation(
                        hyponym=page.page_id,
                        hypernym=hypernym,
                        source="baseline",
                    )
                )
        taxonomy.finalize()
        return taxonomy

    def _suffix_hypernyms(self, segmenter: Segmenter, phrase: str) -> list[str]:
        """Rightmost word only — no separation tree.

        Fu et al. rely on a thesaurus of valid category words, which we
        model with a cheap NE rejection on the suffix.
        """
        try:
            words = segmenter.segment(phrase)
        except SegmentationError:
            return []
        suffix = words[-1]
        if (
            is_cjk_word(suffix)
            and len(suffix) >= 2
            and not self._recognizer.is_named_entity(suffix)
        ):
            return [suffix]
        return []

    @staticmethod
    def _harvest(dump: EncyclopediaDump) -> Lexicon:
        lexicon = Lexicon.base()
        for page in dump:
            lexicon.add(page.title, 300, "n")
            for tag in page.tags:
                if tag and len(tag) <= 8:
                    lexicon.add(tag, 200, "n")
        return lexicon
