"""The three Chinese taxonomies CN-Probase is compared against (Table I).

- :class:`ChineseWikiTaxonomy` — Li et al. 2015: single source (tag) with
  strict validation → high precision, low coverage,
- :class:`Bigcilin` — Fu et al. 2013: multiple sources, no verification
  module → large but noisier,
- :class:`ProbaseTran` — machine-translated English Probase with the
  paper's three heuristic filters (meaning / transitivity / POS) →
  cross-language noise keeps precision low.

Each baseline's ``build`` returns a :class:`~repro.taxonomy.store.Taxonomy`
so Table I can be computed uniformly.
"""

from repro.baselines.bigcilin import Bigcilin
from repro.baselines.probase_tran import ProbaseTran
from repro.baselines.translation import NoisyTranslator, TranslationConfig
from repro.baselines.wikitaxonomy import ChineseWikiTaxonomy

__all__ = [
    "Bigcilin",
    "ChineseWikiTaxonomy",
    "NoisyTranslator",
    "ProbaseTran",
    "TranslationConfig",
]
