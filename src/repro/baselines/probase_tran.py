"""Probase-Tran baseline: translated English Probase + three filters.

The paper translates English Probase to Chinese with Google Translate,
then filters translation errors "from three aspects (meaning,
transitivity, POS)" — and still lands at only 54.5% precision, the
evidence that cross-language transfer cannot build a good Chinese
taxonomy.

The simulated flow:

1. an English-Probase-like source is derived from the world's ground
   truth over a sample of entities (Probase itself is ~92% precise, so a
   small base-noise rate is injected before translation),
2. every pair passes the :class:`NoisyTranslator` channel,
3. the three filters:
   - *meaning* — the translated hypernym must be a word the Chinese
     lexicon knows (translation-confidence proxy),
   - *transitivity* — the hypernym must be connected: it either recurs as
     a hypernym for several hyponyms or itself appears as a hyponym
     (isolated hypernyms are translation debris),
   - *POS* — the hypernym must tag as a noun.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.baselines.translation import NoisyTranslator, TranslationConfig
from repro.encyclopedia.synthesis.world import SyntheticWorld
from repro.nlp.lexicon import Lexicon
from repro.nlp.pos import POSTagger
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@dataclass
class ProbaseTranConfig:
    """Source sampling and filter knobs."""

    entity_fraction: float = 0.15   # Probase covers far fewer Chinese entities
    base_noise: float = 0.08        # English Probase's own error rate
    min_hypernym_support: int = 2   # transitivity filter connectivity bound
    translation: TranslationConfig = field(default_factory=TranslationConfig)
    seed: int = 0


class ProbaseTran:
    """Cross-language translated taxonomy with heuristic cleanup."""

    def __init__(
        self,
        config: ProbaseTranConfig | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        self.config = config if config is not None else ProbaseTranConfig()
        self._lexicon = lexicon if lexicon is not None else Lexicon.base()
        self._tagger = POSTagger(self._lexicon)

    # -- step 1: the English-Probase-like source ---------------------------

    def source_pairs(self, world: SyntheticWorld) -> list[tuple[str, str]]:
        """(entity surface, concept) pairs standing in for English Probase."""
        rng = random.Random(self.config.seed)
        concepts = sorted(world.concepts)
        pairs: list[tuple[str, str]] = []
        for entity in world.entities:
            if rng.random() > self.config.entity_fraction:
                continue
            for concept in sorted(entity.gold_hypernyms):
                if rng.random() < self.config.base_noise:
                    wrong = rng.choice(concepts)
                    pairs.append((entity.name, wrong))
                else:
                    pairs.append((entity.name, concept))
        return pairs

    # -- steps 2 + 3: translate, then filter ----------------------------------

    def build(self, world: SyntheticWorld) -> Taxonomy:
        translator = NoisyTranslator(self.config.translation)
        translated: list[tuple[str, str]] = []
        for entity, concept in self.source_pairs(world):
            result = translator.translate_pair(entity, concept)
            if result is not None:
                translated.append(result)

        filtered = self._apply_filters(translated)

        taxonomy = Taxonomy(name="Probase-Tran")
        for entity_surface, hypernym in filtered:
            # Translated taxonomies have no disambiguated ids — the surface
            # itself is the entity key, as in the real Probase dump.
            if not taxonomy.has_entity(entity_surface):
                taxonomy.add_entity(
                    Entity(page_id=entity_surface, name=entity_surface)
                )
            taxonomy.add_relation(
                IsARelation(
                    hyponym=entity_surface,
                    hypernym=hypernym,
                    source="baseline",
                )
            )
        taxonomy.finalize()
        return taxonomy

    def _apply_filters(
        self, pairs: list[tuple[str, str]]
    ) -> list[tuple[str, str]]:
        # meaning filter: hypernym must be in-lexicon (confident translation)
        meaning_kept = [
            (e, h) for e, h in pairs if h in self._lexicon
        ]
        # transitivity filter: hypernym connectivity in the translated graph
        hypernym_counts = Counter(h for _, h in meaning_kept)
        hyponym_surfaces = {e for e, _ in meaning_kept}
        transitivity_kept = [
            (e, h)
            for e, h in meaning_kept
            if hypernym_counts[h] >= self.config.min_hypernym_support
            or h in hyponym_surfaces
        ]
        # POS filter: hypernym must be a noun
        return [
            (e, h) for e, h in transitivity_kept if self._tagger.is_noun(h)
        ]
