"""Chinese WikiTaxonomy baseline (Li et al. 2015).

Built from a *single* source — the tag — with strict validation, which is
exactly how the paper characterises it: "a high precision but low
coverage", 25× fewer isA relations than CN-Probase.

The strictness is modelled after the original's UGC-quality gates:

- only pages whose tag set looks curated (enough tags, has an abstract),
- only tags that recur across many pages (frequency prior over the tag
  vocabulary — rare tags are usually noise or overly specific),
- thematic-word and obvious-NE rejection with the shared NLP substrate.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.core.verification.thematic import THEMATIC_WORDS
from repro.encyclopedia.model import EncyclopediaDump
from repro.nlp.lexicon import Lexicon
from repro.nlp.ner import NamedEntityRecognizer
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@dataclass
class WikiTaxonomyConfig:
    """Gates of the single-source build.

    ``page_fraction`` models the source-size gap: Chinese WikiTaxonomy is
    built from user-curated wiki pages, a corpus roughly 25× smaller than
    the full encyclopedia CN-Probase consumes — which is where the paper's
    25× relation-count gap comes from.
    """

    page_fraction: float = 0.08   # share of pages with wiki-grade curation
    min_tag_frequency: int = 5    # tag must describe at least this many pages
    min_page_tags: int = 2        # pages with fewer tags are skipped
    max_tags_per_page: int = 2    # canonical categories come first in wikis
    min_cooc_ratio: float = 0.08  # secondary tag must co-occur with the first
    require_abstract: bool = True
    selection_seed: int = 13


class ChineseWikiTaxonomy:
    """Tag-only taxonomy with strict validation."""

    def __init__(
        self,
        config: WikiTaxonomyConfig | None = None,
        lexicon: Lexicon | None = None,
    ) -> None:
        self.config = config if config is not None else WikiTaxonomyConfig()
        self._lexicon = lexicon if lexicon is not None else Lexicon.base()
        self._recognizer = NamedEntityRecognizer(self._lexicon)

    def build(self, dump: EncyclopediaDump) -> Taxonomy:
        config = self.config
        tag_counts: Counter[str] = Counter()
        cooccurrence: Counter[tuple[str, str]] = Counter()
        for page in dump:
            unique = list(dict.fromkeys(page.tags))
            tag_counts.update(unique)
            for i, tag_a in enumerate(unique):
                for tag_b in unique[i + 1:]:
                    cooccurrence[(tag_a, tag_b)] += 1
                    cooccurrence[(tag_b, tag_a)] += 1
        valid_tags = {
            tag
            for tag, count in tag_counts.items()
            if count >= config.min_tag_frequency
            and tag not in THEMATIC_WORDS
            and not self._recognizer.is_named_entity(tag)
        }
        rng = random.Random(config.selection_seed)
        taxonomy = Taxonomy(name="Chinese WikiTaxonomy")
        for page in dump:
            if rng.random() > config.page_fraction:
                continue
            if config.require_abstract and not page.has_abstract:
                continue
            if len(page.tags) < config.min_page_tags:
                continue
            # Curated wikis list canonical categories first; later tags are
            # increasingly user-appended and noisy, so only the leading ones
            # are trusted (part of the original's strict validation).
            candidates = [
                tag for tag in page.tags[: config.max_tags_per_page]
                if tag in valid_tags and tag != page.title
            ]
            candidates = list(dict.fromkeys(candidates))
            if not candidates:
                continue
            # The leading category is trusted; later ones must regularly
            # co-occur with it across the corpus (anchored consistency) —
            # one-off mislabels have no such support.
            anchor = candidates[0]
            kept = [anchor]
            for tag in candidates[1:]:
                support = cooccurrence[(anchor, tag)]
                if support >= config.min_cooc_ratio * tag_counts[tag]:
                    kept.append(tag)
            taxonomy.add_entity(Entity(page_id=page.page_id, name=page.title))
            for tag in kept:
                taxonomy.add_relation(
                    IsARelation(
                        hyponym=page.page_id,
                        hypernym=tag,
                        source="baseline",
                    )
                )
        taxonomy.finalize()
        return taxonomy
