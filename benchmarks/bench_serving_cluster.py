"""Serving cluster — sharded/replicated/HTTP paths vs the in-process facade.

Replays one Table-II-mix workload over the same built taxonomy through
every layer of the :mod:`repro.serving` stack:

1. **unsharded facade** — :class:`TaxonomyService` singles (the PR-2
   baseline every cluster path must answer identically to),
2. **sharded store** — :class:`ShardedSnapshotStore` singles at 1, 2
   and 4 shards, plus batched fan-out/merge at 4 shards,
3. **replicated router** — 2 replicas per shard with health tracking,
4. **real HTTP** — the ThreadingHTTPServer + ``TaxonomyClient`` wire,
   singles vs batched (fewer, larger round trips).

Asserts the sharded store answers **byte-identically** to the unsharded
facade at every shard count (the acceptance bar for the cluster), and
that HTTP batching beats HTTP singles.  Numbers land in
``benchmarks/out/BENCH_parallel.json`` under ``"serving_cluster"``.
"""

from __future__ import annotations

from time import perf_counter

from bench_parallel_build import merge_bench_json
from repro.core.pipeline import CNProbaseBuilder, PipelineConfig, ResourceCache
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import render_table
from repro.serving import (
    ReplicatedRouter,
    ShardedSnapshotStore,
    TaxonomyClient,
    start_server,
)
from repro.taxonomy.service import TaxonomyService
from repro.workloads import ArgumentPools, TableIICallStream

N_ENTITIES = 1_200
N_CALLS = 20_000
N_HTTP_SINGLE = 1_500
N_HTTP_BATCHED = 12_000
BATCH_SIZE = 64
SHARD_COUNTS = (1, 2, 4)
REPLICAS = 2


def _build_taxonomy():
    dump = SyntheticWorld.generate(seed=9, n_entities=N_ENTITIES).dump()
    builder = CNProbaseBuilder(
        PipelineConfig(enable_abstract=False), resource_cache=ResourceCache()
    )
    return builder.build(dump).taxonomy


def _handlers(front):
    return {
        "men2ent": front.men2ent,
        "getConcept": front.get_concepts,
        "getEntity": front.get_entities,
    }


def _batch_handlers(front):
    return {
        "men2ent": front.men2ent_batch,
        "getConcept": front.get_concepts_batch,
        "getEntity": front.get_entities_batch,
    }


def _timed_singles(calls, front):
    handlers = _handlers(front)
    best = float("inf")
    results = []
    for _ in range(2):  # best-of-two: steady-state, caches warm
        started = perf_counter()
        results = [handlers[call.api](call.argument) for call in calls]
        best = min(best, perf_counter() - started)
    return best, results


def _timed_batched(calls, front, batch_size=BATCH_SIZE):
    batched = _batch_handlers(front)
    best = float("inf")
    results = []
    for _ in range(2):
        buffers: dict[str, list[str]] = {name: [] for name in batched}
        results = []
        started = perf_counter()
        for call in calls:
            buffer = buffers[call.api]
            buffer.append(call.argument)
            if len(buffer) >= batch_size:
                results.extend(batched[call.api](buffer))
                buffer.clear()
        for name, buffer in buffers.items():
            if buffer:
                results.extend(batched[name](buffer))
        best = min(best, perf_counter() - started)
    return best, results


def test_serving_cluster_benchmark(record):
    taxonomy = _build_taxonomy()
    calls = TableIICallStream(
        ArgumentPools.from_taxonomy(taxonomy), seed=13
    ).generate(N_CALLS)
    ops = lambda n, seconds: n / seconds  # noqa: E731

    facade = TaxonomyService(taxonomy)
    facade_seconds, facade_results = _timed_singles(calls, facade)
    rows = [
        ["unsharded facade (singles)",
         f"{ops(N_CALLS, facade_seconds):,.0f}", "1.00x"]
    ]
    payload: dict[str, float | int | bool] = {
        "n_calls": N_CALLS,
        "batch_size": BATCH_SIZE,
        "facade_single_ops": ops(N_CALLS, facade_seconds),
    }

    # -- sharded store: byte-identical answers at every shard count ------
    store4 = None
    for n_shards in SHARD_COUNTS:
        store = ShardedSnapshotStore(taxonomy, n_shards=n_shards)
        seconds, results = _timed_singles(calls, store)
        assert results == facade_results, (
            f"sharded answers diverged from the facade at {n_shards} shards"
        )
        rows.append([
            f"sharded store, {n_shards} shard(s) (singles)",
            f"{ops(N_CALLS, seconds):,.0f}",
            f"{facade_seconds / seconds:.2f}x",
        ])
        payload[f"sharded_{n_shards}_single_ops"] = ops(N_CALLS, seconds)
        store4 = store

    # Batched results come back in buffer-flush order, so the identity
    # check is against the facade served through the same batching.
    _, facade_batched_results = _timed_batched(calls, facade)
    batched_seconds, batched_results = _timed_batched(calls, store4)
    assert batched_results == facade_batched_results
    rows.append([
        f"sharded store, 4 shards (batched {BATCH_SIZE})",
        f"{ops(N_CALLS, batched_seconds):,.0f}",
        f"{facade_seconds / batched_seconds:.2f}x",
    ])
    payload["sharded_4_batched_ops"] = ops(N_CALLS, batched_seconds)

    # -- replicated router ------------------------------------------------
    router = ReplicatedRouter.from_store(
        ShardedSnapshotStore(taxonomy, n_shards=4), replicas=REPLICAS
    )
    router_seconds, router_results = _timed_singles(calls, router)
    assert router_results == facade_results
    rows.append([
        f"router, 4 shards x {REPLICAS} replicas (singles)",
        f"{ops(N_CALLS, router_seconds):,.0f}",
        f"{facade_seconds / router_seconds:.2f}x",
    ])
    payload["router_single_ops"] = ops(N_CALLS, router_seconds)

    # -- real HTTP: singles vs batched ------------------------------------
    server = start_server(
        ShardedSnapshotStore(taxonomy, n_shards=4), admin_token="bench"
    )
    try:
        client = TaxonomyClient(server.url)
        http_single_seconds, http_single_results = _timed_singles(
            calls[:N_HTTP_SINGLE], TaxonomyClient(server.url)
        )
        assert http_single_results == facade_results[:N_HTTP_SINGLE]
        _, facade_http_expected = _timed_batched(
            calls[:N_HTTP_BATCHED], facade
        )
        http_batched_seconds, http_batched_results = _timed_batched(
            calls[:N_HTTP_BATCHED], client
        )
        assert http_batched_results == facade_http_expected
    finally:
        server.close()
    http_single_ops = ops(N_HTTP_SINGLE, http_single_seconds)
    http_batched_ops = ops(N_HTTP_BATCHED, http_batched_seconds)
    rows.append([
        "HTTP singles (client SDK)", f"{http_single_ops:,.0f}", ""
    ])
    rows.append([
        f"HTTP batched ({BATCH_SIZE}/round trip)",
        f"{http_batched_ops:,.0f}",
        f"{http_batched_ops / http_single_ops:.2f}x vs HTTP singles",
    ])
    payload["http_single_ops"] = http_single_ops
    payload["http_batched_ops"] = http_batched_ops
    payload["http_batching_speedup"] = http_batched_ops / http_single_ops
    payload["identical_answers_all_shard_counts"] = True

    record(render_table(
        ["serving path", "ops/sec", "vs facade"],
        rows,
        title=(
            f"Serving cluster — {N_CALLS:,} Table-II-mix calls, "
            f"{N_ENTITIES:,}-entity taxonomy "
            f"(HTTP rows: {N_HTTP_SINGLE:,}/{N_HTTP_BATCHED:,} calls)"
        ),
    ))
    merge_bench_json("serving_cluster", payload)

    # Batching is the whole point of the wire API: one round trip must
    # amortise over many answers.
    assert http_batched_ops > http_single_ops, (
        f"HTTP batching ({http_batched_ops:,.0f} ops/s) should beat "
        f"HTTP singles ({http_single_ops:,.0f} ops/s)"
    )
