#!/usr/bin/env bash
# Tier-1 tests + the fast perf gates to run before pushing pipeline or
# serving changes: stage-registry overhead, parallel-vs-serial build
# equivalence (byte-identical output + speedup trajectory), serving
# throughput (read-optimized snapshots >= 2x the per-call-sorted path),
# the serving cluster (sharded answers byte-identical to the unsharded
# facade at 1/2/4 shards, HTTP batched > HTTP singles), the incremental
# rebuild contract (delta-applied taxonomy byte-identical to a full
# rebuild, small-change refresh faster than a full build) and two real
# server round trips (cn-probase serve subprocess: start -> query ->
# swap -> query -> shutdown, and build -> diff -> incremental rebuild
# -> /admin/apply-delta), plus the delta-chain contract (composed
# chain = one-by-one chain = cold rebuild, byte-identical; one
# composed publish beats N nightly publishes).  The perf numbers land
# in benchmarks/out/BENCH_parallel.json so future PRs have a
# trajectory to regress against.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python -m pytest -x -q benchmarks/bench_stage_overhead.py
python -m pytest -x -q benchmarks/bench_parallel_build.py \
    benchmarks/bench_serving_throughput.py
python -m pytest -x -q benchmarks/bench_serving_cluster.py
python -m pytest -x -q benchmarks/bench_incremental_build.py
python -m pytest -x -q benchmarks/bench_delta_chain.py
python benchmarks/smoke_serving_roundtrip.py
python benchmarks/smoke_incremental_roundtrip.py
