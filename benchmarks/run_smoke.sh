#!/usr/bin/env bash
# Tier-1 tests + the fast perf gates to run before pushing pipeline or
# serving changes: stage-registry overhead, parallel-vs-serial build
# equivalence (byte-identical output + speedup trajectory), serving
# throughput (read-optimized snapshots >= 2x the per-call-sorted path),
# the serving cluster (sharded answers byte-identical to the unsharded
# facade at 1/2/4 shards, HTTP batched > HTTP singles), the incremental
# rebuild contract (delta-applied taxonomy byte-identical to a full
# rebuild, small-change refresh faster than a full build) and two real
# server round trips (cn-probase serve subprocess: start -> query ->
# swap -> query -> shutdown, and build -> diff -> incremental rebuild
# -> /admin/apply-delta), plus the delta-chain contract (composed
# chain = one-by-one chain = cold rebuild, byte-identical; one
# composed publish beats N nightly publishes), plus the workload
# scenario suite (all 10 built-in repro.workloads scenarios open-loop
# against the in-process facade, publish-under-load additionally over
# live HTTP, the chaos pair over a fault-injected replica cluster —
# zero mixed-version answers and full hash convergence throughout),
# plus the self-healing chaos smoke (kill -> publish -> restart ->
# probe-time auto-resync -> byte-identical content hashes), the
# telemetry overhead gate (unified registry + trace hook within 5% of
# the un-instrumented in-process hot path), the exposition-parity
# smoke (every metric in the JSON /metrics payload must appear in the
# Prometheus text rendering, and vice versa), the process-backend
# smoke (CLI build with --backend processes byte-identical to serial,
# sidecar records the backend), a fast single-scenario CLI smoke, and
# the static-analysis gate (`cn-probase lint`: every repro.analysis
# checker over every package, zero non-baselined findings).  The perf
# numbers land in benchmarks/out/BENCH_parallel.json so future PRs
# have a trajectory to regress against — the final check fails the run
# if that file did not grow.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

bench_json="benchmarks/out/BENCH_parallel.json"
bench_bytes_before=0
[ -f "$bench_json" ] && bench_bytes_before=$(wc -c < "$bench_json")

python -m pytest -x -q
python -m pytest -x -q benchmarks/bench_stage_overhead.py
python -m pytest -x -q benchmarks/bench_parallel_build.py \
    benchmarks/bench_serving_throughput.py
python -m pytest -x -q benchmarks/bench_serving_cluster.py
python -m pytest -x -q benchmarks/bench_incremental_build.py
python -m pytest -x -q benchmarks/bench_delta_chain.py
python -m pytest -x -q benchmarks/bench_workload_scenarios.py
python -m pytest -x -q benchmarks/bench_obs_overhead.py
python benchmarks/smoke_serving_roundtrip.py
python benchmarks/smoke_incremental_roundtrip.py
python benchmarks/smoke_chaos_replication.py
python benchmarks/smoke_metrics_parity.py
python benchmarks/smoke_process_backend.py
# fast single-scenario smoke through the CLI: in-process facade + a
# live `cn-probase serve` subprocess, 4x-compressed schedule
python -m repro.cli workload run steady_table2 --time-scale 4
# static-analysis gate: all five invariant checkers, hard-fail on any
# finding that is neither pragma-acknowledged nor in the shipped
# baseline; the counts land as the static_analysis trajectory section
python -m repro.cli lint --format json --bench-json "$bench_json" \
    > /dev/null

# fail loudly if the perf trajectory did not grow: every benchmark
# above appends here, so a silently-skipped writer shows up as a
# missing section or a shrunken file.
python - "$bench_json" "$bench_bytes_before" <<'EOF'
import json, os, sys

path, before = sys.argv[1], int(sys.argv[2])
assert os.path.exists(path), f"{path} was never written"
size = os.path.getsize(path)
data = json.load(open(path, encoding="utf-8"))
scenarios = data.get("workload_scenarios", {})
expected = {
    "steady_table2", "zipf_hot", "burst", "batch_heavy",
    "adversarial_miss", "publish_under_load", "multi_tenant",
    "churn_world", "replica_chaos", "dual_publisher",
}
missing = expected - set(scenarios)
assert not missing, f"scenarios missing from {path}: {sorted(missing)}"
untraced = sorted(
    f"{name}@{target}"
    for name, targets in scenarios.items() if name in expected
    for target, entry in targets.items() if not entry.get("per_hop")
)
assert not untraced, (
    f"scenarios without a per-hop trace breakdown: {untraced}"
)
assert "obs_overhead" in data, "telemetry overhead gate never ran"
backends = data.get("parallel_build", {}).get("backends", {})
missing_backends = {
    "threads", "processes_w2", "processes_w4", "processes_smoke",
} - set(backends)
assert not missing_backends, (
    f"build backends missing from the perf trajectory: "
    f"{sorted(missing_backends)}"
)
assert backends["processes_smoke"].get("identical_output"), (
    "process-backend CLI smoke did not assert byte-identity"
)
analysis = data.get("static_analysis")
assert analysis, "static-analysis gate never ran (no static_analysis section)"
assert analysis["findings_new"] == 0, (
    f"static analysis found {analysis['findings_new']} non-baselined "
    f"finding(s): run `cn-probase lint` for the sites"
)
assert size >= before and size > 2, (
    f"{path} did not grow: {before} -> {size} bytes"
)
print(f"{path}: {size} bytes, sections: {', '.join(sorted(data))}")
EOF
