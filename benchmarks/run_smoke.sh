#!/usr/bin/env bash
# Tier-1 tests + the stage-overhead bench: the fast "nothing regressed"
# gate to run before pushing pipeline or serving changes.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python -m pytest -x -q benchmarks/bench_stage_overhead.py
