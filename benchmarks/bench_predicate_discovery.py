"""Predicate discovery (Section II in-text): 341 candidates → 12 kept.

Distant supervision over the infobox discovers candidate implicit-isA
predicates by aligning SPO triples with bracket-derived priors.  At full
scale the paper reports 341 candidates of which 12 survive manual
curation; proportionally, the synthetic world carries a dozen genuine
implicit-isA predicates among dozens of accidental aligners.  The
benchmarked unit is one full discovery pass.
"""

from __future__ import annotations

from repro.core.generation.predicates import PredicateDiscovery
from repro.encyclopedia.synthesis.inventory import PREDICATE_WHITELIST
from repro.eval.report import format_percent, render_table


def test_predicate_discovery_benchmark(benchmark, world, cn_probase, record):
    bracket_relations = cn_probase.per_source_relations["bracket"]
    discoverer = PredicateDiscovery()

    result = benchmark(
        lambda: discoverer.discover(world.dump(), bracket_relations)
    )

    rows = [
        [c.name, str(c.aligned), str(c.total), format_percent(c.support),
         "selected" if c.name in result.selected else
         ("genuine" if c.name in PREDICATE_WHITELIST else "noise")]
        for c in result.candidates[:20]
    ]
    rows.append(["…", "", "", "", f"{result.n_candidates} candidates total"])
    record(render_table(
        ["predicate", "aligned", "total", "support", "status"],
        rows,
        title=(
            "Predicate discovery — paper: 341 candidates → 12 curated; "
            f"here: {result.n_candidates} candidates → "
            f"{len(result.selected)} selected"
        ),
    ))

    # shape: more candidates than selections (paper: 341 vs 12)
    assert result.n_candidates >= len(result.selected) + 6
    assert 6 <= len(result.selected) <= 12
    # automatic curation recovers only genuine implicit-isA predicates
    assert set(result.selected) <= PREDICATE_WHITELIST
    # weak aligners were seen but rejected
    rejected = {c.name for c in result.candidates} - set(result.selected)
    assert rejected & {"称号", "属于", "相关领域", "别称", "出生地"}
