"""Workload scenario suite — the 10 built-ins against the serving stack.

Replays every built-in :mod:`repro.workloads` scenario open-loop
against the in-process :class:`TaxonomyService` facade, plus the
publish-under-load scenario against a live ``cn-probase serve``
subprocess over HTTP (the full wire path: spawn → ready-file →
replay → ``/admin/apply-delta`` mid-run → shutdown).  The two chaos
scenarios (``replica_chaos``, ``dual_publisher``) carry a
:class:`FaultSpec` and therefore run against their own fault-injected
replica cluster regardless of the requested target.

Asserted invariants:

- every scheduled call is served (open-loop: late, never dropped),
- zero serving errors on the in-process path,
- the delta publish fires and reports no error,
- **zero mixed-version answers** — no batch ever spans the publish,
  even with replicas dying, restarting stale, and a flaky wire,
- chaos scenarios end **converged**: every replica alive and at the
  publisher's exact content hash,
- every scenario × target pair lands in
  ``benchmarks/out/BENCH_parallel.json`` under ``workload_scenarios``.

Schedules are compressed 2x (``time_scale=2``) so the suite stays in
smoke-test territory; the request sequence is identical either way.
"""

from __future__ import annotations

from bench_parallel_build import BENCH_JSON
from repro.eval.report import render_table
from repro.workloads import (
    append_scenario_entry,
    builtin_scenarios,
    prepare_scenario,
    run_scenario,
)

TIME_SCALE = 2.0
#: Scenarios additionally replayed over HTTP against a live
#: ``cn-probase serve`` subprocess (the slowest target — keep it to the
#: ones whose contract involves the wire).
HTTP_SCENARIOS = ("publish_under_load",)


def _assert_clean(report, *, allow_errors: bool) -> None:
    # Open-loop contract: every scheduled event was dispatched (lateness
    # is observed per event — late, never dropped or absorbed).
    assert report.lateness.calls == report.n_events, (
        f"{report.scenario}@{report.target}: dispatched "
        f"{report.lateness.calls} of {report.n_events} events"
    )
    if not allow_errors:
        assert report.n_errors == 0, (
            f"{report.scenario}@{report.target}: "
            f"{report.n_errors} errors: {report.error_samples}"
        )
        served = sum(ledger.calls for ledger in report.per_api.values())
        assert served == report.n_calls, (
            f"{report.scenario}@{report.target}: served "
            f"{served} of {report.n_calls} calls"
        )
    for action in report.actions:
        assert action.error is None, (
            f"{report.scenario}@{report.target}: action {action.label!r} "
            f"failed: {action.error}"
        )
        assert action.fired_at_s is not None
    if report.audit is not None:
        assert report.audit["mixed_answers"] == 0, (
            f"{report.scenario}@{report.target}: "
            f"{report.audit['mixed_answers']} mixed-version answers "
            f"(samples: {report.audit['mixed_samples']})"
        )
    if report.convergence is not None:
        assert report.convergence["converged"], (
            f"{report.scenario}@{report.target}: chaos cluster did not "
            f"converge: {report.convergence}"
        )
    # Every scenario must land its sampled per-hop latency breakdown —
    # an empty one means trace sampling silently stopped working.
    assert report.per_hop, (
        f"{report.scenario}@{report.target}: no per-hop breakdown "
        f"(traced_calls={report.traced_calls})"
    )


def test_workload_scenarios_benchmark(record):
    rows = []
    reports = []
    for scenario in builtin_scenarios():
        prepared = prepare_scenario(scenario)
        targets = ["service"]
        if scenario.name in HTTP_SCENARIOS:
            targets.append("http")
        for kind in targets:
            report = run_scenario(prepared, kind, time_scale=TIME_SCALE)
            _assert_clean(report, allow_errors=kind == "http")
            append_scenario_entry(BENCH_JSON, report)
            reports.append(report)
            full = report.as_dict()
            rows.append([
                scenario.name,
                report.target,  # chaos scenarios override the target
                f"{full['throughput_calls_per_s']:,.0f}",
                f"{full['hit_rate']:.2f}",
                f"{full['lateness']['p95_seconds'] * 1e3:.1f}",
                str(full["audit"]["mixed_answers"])
                if full["audit"] is not None else "-",
            ])
    record(render_table(
        ["scenario", "target", "calls/s", "hit", "late p95 ms", "mixed"],
        rows,
        title=(
            f"Workload scenarios — {len(reports)} replays "
            f"(time_scale={TIME_SCALE:g}), perf in {BENCH_JSON.name}"
        ),
    ))
    assert BENCH_JSON.exists()
