"""Exposition-parity smoke: JSON `/metrics` vs Prometheus text.

Both expositions render from the same registry snapshot, so any
metric present in the JSON payload must also appear in
``GET /metrics?format=text`` — a writer registered on only one side
(or a renderer silently dropping a family) fails this gate.  Runs
against a live in-process cluster server with real traffic (queries,
a traced request, an admin scrape) so the registry holds every kind
of family: counters, summaries, and weakref'd component collectors.

Run:  python benchmarks/smoke_metrics_parity.py
(run_smoke.sh runs it after the workload-scenario benchmark)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))
sys.path.insert(0, str(REPO / "src"))

from repro.core.pipeline import PipelineConfig, build_cn_probase  # noqa: E402
from repro.encyclopedia import SyntheticWorld  # noqa: E402
from repro.obs import fresh_hub  # noqa: E402
from repro.serving import TaxonomyClient, build_cluster  # noqa: E402
from repro.serving.server import start_server  # noqa: E402

ADMIN_TOKEN = "parity-smoke-token"

#: families the serving stack is expected to publish — a rename or a
#: dropped writer shows up here, not just as a parity mismatch
EXPECTED_METRICS = {
    "http_requests_total",
    "http_request_seconds",
    "serving_api_calls_total",
    "serving_api_latency_seconds",
}


def main() -> None:
    world = SyntheticWorld.generate(seed=7, n_entities=400)
    taxonomy = build_cn_probase(
        world.dump(), PipelineConfig(enable_abstract=False)
    ).taxonomy
    mention = sorted(taxonomy.freeze().as_indexes()[0])[0]

    with fresh_hub() as hub:
        router = build_cluster(taxonomy, shards=2, replicas=1, hub=hub)
        server = start_server(
            router, port=0, admin_token=ADMIN_TOKEN, hub=hub
        )
        try:
            client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)

            # Traffic so every family kind has samples: plain queries
            # (counters + latency summaries), a traced query (span
            # plumbing), a miss, health + admin scrapes.
            for _ in range(20):
                client.men2ent(mention)
            client.men2ent("no-such-mention-xyz")
            client.healthz()
            client.fetch_traces(limit=5)

            payload = client.server_metrics()
            names = set(payload["metrics"])
            text = client.server_metrics_text()
        finally:
            server.close()

    missing_families = EXPECTED_METRICS - names
    assert not missing_families, (
        f"JSON /metrics payload lost expected families: "
        f"{sorted(missing_families)}"
    )

    unexposed = sorted(
        name for name in names if f"# TYPE {name} " not in text
    )
    assert not unexposed, (
        f"Prometheus exposition is missing JSON-payload metrics: "
        f"{unexposed}"
    )

    # and the reverse: text never invents families the JSON lacks
    text_families = set(re.findall(r"^# TYPE (\S+) ", text, re.MULTILINE))
    phantom = sorted(text_families - names)
    assert not phantom, f"text exposition has phantom families: {phantom}"

    # summaries must expose quantile series in text form
    assert 'quantile="0.5"' in text and "_count" in text and "_sum" in text

    print(
        f"metrics parity ok: {len(names)} families in both expositions "
        f"({len(text.splitlines())} text lines)"
    )


if __name__ == "__main__":
    main()
