"""Ablation — PMI separation algorithm vs naive alternatives.

Design-choice check from DESIGN.md: the paper's sliding-window PMI
bracketing against (a) a global agglomerative PMI merger and (b) the
suffix-word heuristic Bigcilin-style systems use.  The separation
algorithm should recover multi-word hypernyms (首席战略官) that the
suffix heuristic cannot, at equal or better precision.
"""

from __future__ import annotations

import pytest

from repro.core.generation.separation import BracketExtractor
from repro.errors import SegmentationError
from repro.eval.metrics import relation_precision
from repro.eval.report import format_count, format_percent, render_table
from repro.nlp.pmi import PMIStatistics
from repro.nlp.segmentation import Segmenter
from repro.taxonomy.model import SOURCE_BRACKET, IsARelation


def _suffix_extract(segmenter, pages):
    relations = []
    for page in pages:
        if not page.bracket:
            continue
        try:
            words = segmenter.segment(page.bracket)
        except SegmentationError:
            continue
        suffix = words[-1]
        if len(suffix) >= 2:
            relations.append(
                IsARelation(page.page_id, suffix, SOURCE_BRACKET)
            )
    return relations


@pytest.fixture(scope="module")
def setup(world):
    # the pipeline's harvested lexicon (titles+tags), not the oracle
    # lexicon: subconcept compounds must be *discovered* by separation
    from repro.core.pipeline import harvest_lexicon

    segmenter = Segmenter(harvest_lexicon(world.dump()))
    pmi = PMIStatistics()
    pmi.add_corpus(segmenter.segment_corpus(world.dump().text_corpus()))
    pages = [p for p in world.dump() if p.bracket]
    return segmenter, pmi, pages


def test_ablation_separation_benchmark(
    benchmark, world, oracle, setup, record
):
    segmenter, pmi, pages = setup
    sliding = BracketExtractor(segmenter, pmi)
    agglomerative = BracketExtractor(segmenter, pmi, agglomerative=True)

    sliding_relations = benchmark(lambda: sliding.extract(pages))
    agglom_relations = agglomerative.extract(pages)
    suffix_relations = _suffix_extract(segmenter, pages)

    rows = []
    results = {}
    for name, relations in (
        ("PMI sliding window (paper)", sliding_relations),
        ("PMI agglomerative", agglom_relations),
        ("naive suffix word", suffix_relations),
    ):
        estimate = relation_precision(relations, oracle)
        multiword = sum(1 for r in relations if len(r.hypernym) >= 3)
        results[name] = (len(relations), estimate.precision, multiword)
        rows.append([
            name, format_count(len(relations)),
            format_percent(estimate.precision), format_count(multiword),
        ])
    record(render_table(
        ["variant", "# relations", "precision", "# multi-word hypernyms"],
        rows,
        title="Ablation — bracket hypernym acquisition strategies",
    ))

    paper_variant = results["PMI sliding window (paper)"]
    suffix_variant = results["naive suffix word"]
    # the separation algorithm recovers more relations (subconcept
    # compounds) at comparable precision
    assert paper_variant[0] > suffix_variant[0]
    assert paper_variant[1] >= suffix_variant[1] - 0.03
    assert paper_variant[2] > suffix_variant[2]
