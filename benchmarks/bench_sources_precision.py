"""Per-source precision (Section II / IV-B in-text numbers).

Paper: the bracket source alone yields ~2M isA relations at 96.2%
precision; the tag source reaches 97.4% in the final taxonomy
(comparable to Chinese WikiTaxonomy).  This benchmark reports both the
raw generation-module precision per source and the post-verification
precision per provenance, which also exercises every page anatomy of
Figure 1.
"""

from __future__ import annotations

from repro.eval.metrics import sample_precision
from repro.eval.report import format_count, format_percent, render_table

PAPER_RAW = {"bracket": 0.962}
PAPER_FINAL = {"tag": 0.974}


def test_sources_benchmark(benchmark, cn_probase, oracle, record):
    per_source = cn_probase.per_source_relations

    def measure():
        rows = {}
        for source, relations in per_source.items():
            rows[source] = (
                len(relations),
                sample_precision(relations, oracle, 2000, seed=1).precision,
            )
        return rows

    raw = benchmark(measure)

    final = {}
    for source in per_source:
        relations = cn_probase.taxonomy.relations_by_source(source)
        final[source] = (
            len(relations),
            sample_precision(relations, oracle, 2000, seed=1).precision
            if relations else float("nan"),
        )

    rows = []
    for source in ("bracket", "abstract", "infobox", "tag"):
        raw_n, raw_p = raw.get(source, (0, float("nan")))
        fin_n, fin_p = final.get(source, (0, float("nan")))
        rows.append([
            source,
            format_count(raw_n), format_percent(raw_p),
            format_count(fin_n),
            format_percent(fin_p) if fin_n else "-",
            format_percent(PAPER_RAW[source]) if source in PAPER_RAW
            else (format_percent(PAPER_FINAL[source])
                  if source in PAPER_FINAL else "-"),
        ])
    record(render_table(
        ["source", "# raw", "raw precision", "# final", "final precision",
         "paper"],
        rows,
        title="Per-source isA precision (raw generation vs verified)",
    ))

    # shape: bracket raw ≥ 93% (paper 96.2%); bracket is the biggest
    # high-precision single source
    assert raw["bracket"][1] >= 0.93
    # tag source is the volume source
    assert raw["tag"][0] > raw["bracket"][0]
    # verification lifts tag precision substantially (paper reaches 97.4%;
    # our synthetic residual noise concentrates in the tag channel, so the
    # verified tag source lands slightly lower — see EXPERIMENTS.md)
    assert final["tag"][1] >= raw["tag"][1] + 0.02
    assert final["tag"][1] >= 0.88
