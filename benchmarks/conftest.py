"""Shared fixtures for the benchmark harness.

One world and one CN-Probase build are shared by every benchmark module
(session scope), so the expensive pipeline runs once.  Every benchmark
prints the paper-shaped table it regenerates and appends it to
``benchmarks/out/results.txt`` so a full run leaves a complete record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baselines import Bigcilin, ChineseWikiTaxonomy, ProbaseTran
from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.pipeline import BuildResult, PipelineConfig, build_cn_probase
from repro.encyclopedia import SyntheticWorld
from repro.eval.metrics import make_oracle

BENCH_SEED = 7
BENCH_ENTITIES = 3000
OUT_DIR = Path(__file__).parent / "out"


def bench_pipeline_config() -> PipelineConfig:
    return PipelineConfig(
        neural=NeuralGenConfig(epochs=4, embed_dim=20, hidden_dim=24),
        max_generation_pages=800,
    )


@pytest.fixture(scope="session")
def world() -> SyntheticWorld:
    return SyntheticWorld.generate(seed=BENCH_SEED, n_entities=BENCH_ENTITIES)


@pytest.fixture(scope="session")
def oracle(world):
    return make_oracle(world)


@pytest.fixture(scope="session")
def cn_probase(world) -> BuildResult:
    return build_cn_probase(world.dump(), bench_pipeline_config())


@pytest.fixture(scope="session")
def wiki_taxonomy(world):
    return ChineseWikiTaxonomy().build(world.dump())


@pytest.fixture(scope="session")
def bigcilin_taxonomy(world):
    return Bigcilin().build(world.dump())


@pytest.fixture(scope="session")
def probase_tran_taxonomy(world):
    return ProbaseTran().build(world)


@pytest.fixture(scope="session")
def record():
    """Print a result block and append it to benchmarks/out/results.txt."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "results.txt"
    path.write_text("", encoding="utf-8")

    def _record(block: str) -> None:
        print()
        print(block)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(block + "\n\n")

    return _record
