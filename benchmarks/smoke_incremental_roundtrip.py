"""Incremental-path smoke: build → diff → incremental rebuild → apply-delta.

Exercises the whole PR-4 refresh loop against the real deployment shape:

1. ``cn-probase build`` a v1 taxonomy from a dump (CLI subprocess),
2. perturb the dump (the nightly edit) and ``cn-probase diff`` it,
3. ``cn-probase build --incremental`` → new taxonomy + ``.delta.jsonl``,
   asserting the output is byte-identical to a full CLI build,
4. ``cn-probase serve`` the v1 taxonomy (subprocess, sharded) and
   publish the delta through ``TaxonomyClient.apply_delta`` — only the
   touched shards may republish — then verify the served answers
   changed accordingly and shut down.

Appends timings to ``benchmarks/out/BENCH_parallel.json`` under
``"incremental_roundtrip"``.

Run:  python benchmarks/smoke_incremental_roundtrip.py
(run_smoke.sh runs it after the serving round trip)
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))
sys.path.insert(0, str(REPO / "src"))

from bench_parallel_build import merge_bench_json  # noqa: E402
from smoke_serving_roundtrip import cli_env, wait_for_ready  # noqa: E402
from repro.encyclopedia import (  # noqa: E402
    EncyclopediaDump,
    load_dump,
    save_dump,
)
from repro.serving import TaxonomyClient  # noqa: E402
from repro.taxonomy import Taxonomy  # noqa: E402

ADMIN_TOKEN = "smoke-incremental-token"
N_ENTITIES = 500


def run_cli(*args: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=cli_env(),
        check=True,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def perturb_dump(src: Path, dst: Path) -> int:
    dump = load_dump(src)
    pages = []
    edited = 0
    for i, page in enumerate(dump.pages):
        if i % 50 == 3 and page.bracket:
            page = dataclasses.replace(
                page, bracket="中国著名" + page.bracket
            )
            edited += 1
        pages.append(page)
    save_dump(EncyclopediaDump(pages), dst)
    return edited


def main() -> None:
    started = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        dump_v1 = tmp_path / "dump-v1.jsonl"
        dump_v2 = tmp_path / "dump-v2.jsonl"
        taxonomy_v1 = tmp_path / "taxonomy-v1.jsonl"
        taxonomy_v2 = tmp_path / "taxonomy-v2.jsonl"
        taxonomy_full = tmp_path / "taxonomy-full.jsonl"

        # build v1, perturb, diff
        run_cli("generate", "--entities", str(N_ENTITIES), "--seed", "5",
                "--out", str(dump_v1))
        run_cli("build", "--dump", str(dump_v1), "--out", str(taxonomy_v1),
                "--no-abstract")
        edited = perturb_dump(dump_v1, dump_v2)
        assert edited > 0
        run_cli("diff", str(dump_v1), str(dump_v2))

        # incremental rebuild: byte-identical to a full rebuild + delta
        incremental_started = time.perf_counter()
        run_cli("build", "--dump", str(dump_v2), "--out", str(taxonomy_v2),
                "--no-abstract", "--incremental",
                "--previous", str(taxonomy_v1),
                "--previous-dump", str(dump_v1))
        incremental_seconds = time.perf_counter() - incremental_started
        run_cli("build", "--dump", str(dump_v2), "--out",
                str(taxonomy_full), "--no-abstract")
        assert taxonomy_v2.read_bytes() == taxonomy_full.read_bytes(), \
            "incremental CLI build must be byte-identical to a full build"
        delta_path = Path(f"{taxonomy_v2}.delta.jsonl")
        assert delta_path.exists(), "incremental build must write the delta"

        # serve v1, publish the delta, verify the served answers moved
        ready_file = tmp_path / "ready"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                str(taxonomy_v1),
                "--shards", "4", "--port", "0",
                "--admin-token", ADMIN_TOKEN,
                "--ready-file", str(ready_file),
            ],
            env=cli_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            url = wait_for_ready(ready_file, process)
            client = TaxonomyClient(url, admin_token=ADMIN_TOKEN)
            assert client.healthz()["version"] == "v1"

            delta = Taxonomy.load_delta(delta_path)
            probe_concept = next(
                (r.hypernym for r in delta.relations_added
                 if r.hyponym_kind == "entity"),
                None,
            )
            before = (
                client.get_entities(probe_concept) if probe_concept else None
            )

            apply_started = time.perf_counter()
            applied = client.apply_delta(str(delta_path))
            apply_seconds = time.perf_counter() - apply_started
            assert applied["applied"] and applied["version"] == "v2", applied
            shard_versions = applied["shard_versions"]
            assert len(shard_versions) == 4 and "v2" in shard_versions

            # the delta's content is actually being served now
            if probe_concept is not None:
                after = client.get_entities(probe_concept)
                assert after != before or delta.is_empty

            client.shutdown_server()
            process.wait(timeout=15)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    total_seconds = time.perf_counter() - started
    untouched = sum(1 for v in shard_versions if v == "v1")
    merge_bench_json("incremental_roundtrip", {
        "entities": N_ENTITIES,
        "pages_edited": edited,
        "incremental_cli_seconds": incremental_seconds,
        "apply_delta_seconds": apply_seconds,
        "shard_versions": shard_versions,
        "untouched_shards": untouched,
        "total_seconds": total_seconds,
        "round_trip": "build->diff->incremental->apply-delta->serve",
        "ok": True,
    })
    print(f"incremental round trip ok: {edited} pages edited, "
          f"delta applied over HTTP in {apply_seconds * 1e3:.0f}ms "
          f"({untouched}/4 shards untouched), "
          f"{total_seconds:.1f}s end to end")


if __name__ == "__main__":
    main()
