"""Delta chains — compose N nights into one publish, equivalence asserted.

The PR-5 chain-equivalence contract is absolute and asserted here, not
just reported: for a chain of nightly deltas d1..dN,

- applying ``compose([d1..dN])`` to the night-0 taxonomy saves
  **byte-identically** to applying the chain one delta at a time,
- and byte-identically to a cold full rebuild of the final night,
- and a sharded store that publishes the one composed delta answers
  exactly like one that published every night separately.

The payoff measured: a replica that missed N nights catches up with one
composed publish instead of N (fewer validations, fewer shard
republishes, one wire round trip) — the delta-aware replication path
(`ReplicatedRouter.publish_delta` + DeltaHistory) does exactly this.
Timings land in ``benchmarks/out/BENCH_parallel.json`` under
``"delta_chain"``.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter

from bench_parallel_build import merge_bench_json
from repro.core.pipeline import CNProbaseBuilder, PipelineConfig, ResourceCache
from repro.encyclopedia import SyntheticWorld
from repro.encyclopedia.model import EncyclopediaDump
from repro.eval.report import render_table
from repro.serving.sharding import ShardedSnapshotStore
from repro.taxonomy.delta import TaxonomyDelta, compose

N_ENTITIES = 800
N_NIGHTS = 3
EDIT_EVERY = 60  # ~1.7% of pages edited per night


def _config() -> PipelineConfig:
    return PipelineConfig(enable_abstract=False)


def perturbed(dump: EncyclopediaDump, night: int) -> EncyclopediaDump:
    """Night *night*'s edits: a distinct slice of pages is touched."""
    pages = []
    for i, page in enumerate(dump.pages):
        if i % EDIT_EVERY == night and page.bracket:
            page = dataclasses.replace(
                page,
                bracket="知名" * night + page.bracket,
                abstract=page.abstract + f"第{night}夜更新。",
            )
        pages.append(page)
    return EncyclopediaDump(pages)


def test_delta_chain_benchmark(record, tmp_path):
    builder = CNProbaseBuilder(_config(), resource_cache=ResourceCache())
    dump = SyntheticWorld.generate(seed=11, n_entities=N_ENTITIES).dump()

    # night 0 and N nightly full builds (the deltas' ground truth)
    taxonomies = [builder.build(dump).taxonomy]
    for night in range(1, N_NIGHTS + 1):
        dump = perturbed(dump, night)
        started = perf_counter()
        taxonomies.append(builder.build(dump).taxonomy)
        cold_rebuild_seconds = perf_counter() - started  # keeps the last

    deltas = [
        TaxonomyDelta.compute(taxonomies[i], taxonomies[i + 1])
        for i in range(N_NIGHTS)
    ]
    assert all(not delta.is_empty for delta in deltas)

    # -- squash the chain -------------------------------------------------
    started = perf_counter()
    squashed = compose(deltas)
    compose_seconds = perf_counter() - started

    # -- apply: one-by-one vs composed ------------------------------------
    chained = taxonomies[0].copy()
    started = perf_counter()
    for delta in deltas:
        chained.apply_delta(delta)
    chain_apply_seconds = perf_counter() - started

    composed_applied = taxonomies[0].copy()
    started = perf_counter()
    composed_applied.apply_delta(squashed)
    composed_apply_seconds = perf_counter() - started

    # -- the chain-equivalence contract, asserted -------------------------
    chained_path = tmp_path / "chained.jsonl"
    composed_path = tmp_path / "composed.jsonl"
    cold_path = tmp_path / "cold.jsonl"
    chained.save(chained_path)
    composed_applied.save(composed_path)
    taxonomies[-1].save(cold_path)
    assert composed_path.read_bytes() == chained_path.read_bytes(), \
        "composed delta diverged from the one-by-one chain"
    assert composed_path.read_bytes() == cold_path.read_bytes(), \
        "composed delta diverged from the cold full rebuild"

    # -- serving side: N publishes vs one ---------------------------------
    nightly_store = ShardedSnapshotStore(taxonomies[0], n_shards=4)
    started = perf_counter()
    for delta in deltas:
        nightly_store.publish_delta(delta)
    nightly_publish_seconds = perf_counter() - started

    squashed_store = ShardedSnapshotStore(taxonomies[0], n_shards=4)
    started = perf_counter()
    squashed_store.publish_delta(squashed)
    squashed_publish_seconds = perf_counter() - started

    reference = ShardedSnapshotStore(taxonomies[-1], n_shards=4)
    probe_keys = sorted(taxonomies[-1].freeze().as_indexes()[0])[:64]
    for key in probe_keys:
        assert nightly_store.men2ent(key) == reference.men2ent(key)
        assert squashed_store.men2ent(key) == reference.men2ent(key)

    publish_speedup = (
        nightly_publish_seconds / squashed_publish_seconds
        if squashed_publish_seconds
        else float("inf")
    )
    chain_records = sum(delta.n_records for delta in deltas)
    rows = [
        [f"cold full rebuild (night {N_NIGHTS})",
         f"{cold_rebuild_seconds:.3f}", ""],
        [f"apply {N_NIGHTS} deltas one by one ({chain_records} records)",
         f"{chain_apply_seconds:.3f}", ""],
        [f"apply composed delta ({squashed.n_records} records)",
         f"{compose_seconds + composed_apply_seconds:.3f}",
         f"{chain_apply_seconds / (compose_seconds + composed_apply_seconds):.2f}x"],
        [f"{N_NIGHTS} sharded publishes",
         f"{nightly_publish_seconds:.3f}", ""],
        ["1 composed sharded publish",
         f"{squashed_publish_seconds:.3f}", f"{publish_speedup:.2f}x"],
        ["byte-identical (chain = composed = cold)", "yes", ""],
    ]
    record(render_table(
        ["path", "seconds", "speedup"],
        rows,
        title=(
            f"Delta chains — {N_ENTITIES:,}-entity world, "
            f"{N_NIGHTS} nights squashed into one delta"
        ),
    ))

    merge_bench_json("delta_chain", {
        "n_entities": N_ENTITIES,
        "n_nights": N_NIGHTS,
        "chain_records": chain_records,
        "composed_records": squashed.n_records,
        "cold_rebuild_seconds": cold_rebuild_seconds,
        "chain_apply_seconds": chain_apply_seconds,
        "compose_seconds": compose_seconds,
        "composed_apply_seconds": composed_apply_seconds,
        "nightly_publish_seconds": nightly_publish_seconds,
        "squashed_publish_seconds": squashed_publish_seconds,
        "publish_speedup": publish_speedup,
        "identical_output": True,
    })
