"""Table I — comparison with other taxonomies.

Paper numbers (full scale):

    Chinese WikiTaxonomy    581,616 /  79,470 /  1,317,956 / 97.6%
    Bigcilin              9,000,000 /  70,000 / 10,000,000 / 90.0%
    Probase-Tran            404,910 / 151,933 /  1,819,273 / 54.5%
    CN-Probase           15,066,667 / 270,025 / 32,925,306 / 95.0%

At 1/1000 synthetic scale the absolute counts shrink proportionally; the
assertions check the *shape*: CN-Probase largest on entities/relations,
precision ordering WikiTaxonomy > CN-Probase > Bigcilin >> Probase-Tran,
and the ~25× relation gap to WikiTaxonomy.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import build_cn_probase
from repro.eval.metrics import sample_precision
from repro.eval.report import format_count, format_percent, render_table

from conftest import bench_pipeline_config

PAPER_ROWS = {
    "Chinese WikiTaxonomy": (581_616, 79_470, 1_317_956, 0.976),
    "Bigcilin": (9_000_000, 70_000, 10_000_000, 0.900),
    "Probase-Tran": (404_910, 151_933, 1_819_273, 0.545),
    "CN-Probase": (15_066_667, 270_025, 32_925_306, 0.950),
}


@pytest.fixture(scope="module")
def table_rows(world, oracle, cn_probase, wiki_taxonomy, bigcilin_taxonomy,
               probase_tran_taxonomy):
    taxonomies = {
        "Chinese WikiTaxonomy": wiki_taxonomy,
        "Bigcilin": bigcilin_taxonomy,
        "Probase-Tran": probase_tran_taxonomy,
        "CN-Probase": cn_probase.taxonomy,
    }
    rows = {}
    for name, taxonomy in taxonomies.items():
        stats = taxonomy.stats()
        precision = sample_precision(
            taxonomy.relations(), oracle, n_samples=2000, seed=1
        ).precision
        rows[name] = (
            stats.n_entities, stats.n_concepts, stats.n_isa_total, precision
        )
    return rows


def _render(table_rows) -> str:
    lines = []
    for name, (entities, concepts, relations, precision) in table_rows.items():
        paper = PAPER_ROWS[name]
        lines.append([
            name,
            format_count(entities), format_count(concepts),
            format_count(relations), format_percent(precision),
            format_percent(paper[3]),
        ])
    return render_table(
        ["Taxonomy", "# entities", "# concepts", "# isA", "precision",
         "paper precision"],
        lines,
        title="Table I — comparison with other taxonomies "
              "(synthetic 1/1000 scale)",
    )


def test_table1_benchmark(benchmark, world, table_rows, record):
    """Regenerates Table I; the benchmarked unit is one full CN-Probase
    pipeline build over the shared dump."""
    result = benchmark.pedantic(
        lambda: build_cn_probase(world.dump(), bench_pipeline_config()),
        rounds=1, iterations=1,
    )
    assert len(result.taxonomy) > 0
    record(_render(table_rows))
    wiki = table_rows["Chinese WikiTaxonomy"]
    cn = table_rows["CN-Probase"]
    big = table_rows["Bigcilin"]
    tran = table_rows["Probase-Tran"]
    assert wiki[3] > cn[3] > big[3] > tran[3]
    assert cn[2] > big[2] > max(wiki[2], tran[2])


class TestShape:
    def test_cn_probase_largest_entities(self, table_rows):
        cn = table_rows["CN-Probase"][0]
        assert all(
            cn >= row[0] for name, row in table_rows.items()
            if name != "CN-Probase"
        )

    def test_cn_probase_largest_relations(self, table_rows):
        cn = table_rows["CN-Probase"][2]
        assert all(
            cn > row[2] for name, row in table_rows.items()
            if name != "CN-Probase"
        )

    def test_precision_ordering(self, table_rows):
        wiki = table_rows["Chinese WikiTaxonomy"][3]
        cn = table_rows["CN-Probase"][3]
        big = table_rows["Bigcilin"][3]
        tran = table_rows["Probase-Tran"][3]
        assert wiki > cn > big > tran

    def test_cn_probase_precision_band(self, table_rows):
        assert 0.93 <= table_rows["CN-Probase"][3] <= 0.97

    def test_probase_tran_below_sixty_five(self, table_rows):
        assert table_rows["Probase-Tran"][3] < 0.65

    def test_wiki_gap_roughly_25x(self, table_rows):
        ratio = table_rows["CN-Probase"][2] / table_rows["Chinese WikiTaxonomy"][2]
        assert 10 <= ratio <= 60, ratio

    def test_headline_ratio_entity_vs_subconcept(self, cn_probase):
        stats = cn_probase.taxonomy.stats()
        # paper: 32.4M entity-concept vs 527K subconcept-concept (~61:1)
        ratio = stats.n_entity_concept / max(stats.n_subconcept_concept, 1)
        assert ratio > 5, ratio
