"""Figure 2 — the generation+verification framework, stage by stage.

Candidate isA relations flow from the four sources into the merged pool;
each verifier then vetoes its error class.  This benchmark reports the
per-stage counts and precisions of that flow and benchmarks the
verification stage in isolation.
"""

from __future__ import annotations

from repro.core.verification.syntax_rules import SyntaxRuleFilter
from repro.eval.metrics import sample_precision
from repro.eval.report import format_count, format_percent, render_table
from repro.nlp.segmentation import Segmenter


def test_pipeline_stages_benchmark(benchmark, world, cn_probase, oracle, record):
    pool_stats = cn_probase.pool_stats

    # reconstruct the staged counts from the build result
    final_relations = cn_probase.taxonomy.relations()
    removed = cn_probase.removed_by
    stage_rows = [
        ["candidate pool (merged)", format_count(pool_stats.unique), ""],
    ]
    for verifier in ("syntax", "ner", "incompatible"):
        stage_rows.append([
            f"removed by {verifier}",
            format_count(len(removed.get(verifier, []))),
            "",
        ])
    final_precision = sample_precision(final_relations, oracle, 2000, 1)
    stage_rows.append([
        "final taxonomy",
        format_count(len(final_relations)),
        format_percent(final_precision.precision),
    ])
    record(render_table(
        ["stage", "# relations", "precision"],
        stage_rows,
        title="Figure 2 — candidate flow through the framework",
    ))

    # benchmarked unit: the cheapest verifier re-run over the final pool
    lexicon = world.build_lexicon()
    syntax = SyntaxRuleFilter(Segmenter(lexicon))
    decision = benchmark(
        lambda: syntax.filter(final_relations, cn_probase.titles)
    )
    # the final taxonomy is already syntax-clean
    assert decision.n_removed <= len(final_relations) * 0.01

    # every verifier removed something, and the pool shrank
    assert all(removed[v] for v in ("syntax", "ner", "incompatible"))
    assert len(final_relations) < pool_stats.unique
    assert final_precision.precision >= 0.93
