"""Scaling — build cost versus corpus size.

The paper's pipeline processed a 16M-page dump; at reproduction scale the
useful check is that the build scales roughly linearly in pages (every
stage is a constant number of passes over the dump).  The benchmarked
unit is the smallest build; the table reports the sweep.
"""

from __future__ import annotations

import time

import pytest

from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import format_count, render_table

SIZES = (500, 1000, 2000)


def _fast_config() -> PipelineConfig:
    return PipelineConfig(enable_abstract=False)


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for size in SIZES:
        world = SyntheticWorld.generate(seed=size, n_entities=size)
        started = time.perf_counter()
        result = build_cn_probase(world.dump(), _fast_config())
        elapsed = time.perf_counter() - started
        rows.append((size, len(result.taxonomy), elapsed))
    return rows


def test_scaling_benchmark(benchmark, sweep, record):
    world = SyntheticWorld.generate(seed=99, n_entities=SIZES[0])

    result = benchmark.pedantic(
        lambda: build_cn_probase(world.dump(), _fast_config()),
        rounds=1, iterations=1,
    )
    assert len(result.taxonomy) > 0

    rows = [
        [format_count(size), format_count(relations), f"{seconds:.2f}s",
         f"{relations / seconds:,.0f}"]
        for size, relations, seconds in sweep
    ]
    record(render_table(
        ["entities", "isA relations", "build time", "relations/s"],
        rows,
        title="Scaling — generation+verification build vs corpus size",
    ))

    # relations grow with corpus size
    assert sweep[-1][1] > sweep[0][1]
    # cost is sub-quadratic: 4x corpus should cost well under 16x time
    ratio = sweep[-1][2] / max(sweep[0][2], 1e-9)
    assert ratio < 16, ratio
