"""Registry dispatch overhead — the pluggable pipeline vs the seed monolith.

The stage architecture must be free: the registry-driven
``CNProbaseBuilder`` has to build the same taxonomy in the same time as
the seed's hard-coded 120-line monolith.  This bench re-creates the
monolith inline (the exact seed flow, minus the neural source both
builds skip), runs both on a 1200-entity world, and asserts

- identical output (same relation set),
- registry wall-clock within noise of the monolith wall-clock,
- the traced dispatch overhead (build total minus time spent inside
  stages and driver steps) is a negligible fraction of the build.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.generation.merge import CandidatePool
from repro.core.generation.predicates import PredicateDiscovery
from repro.core.generation.separation import BracketExtractor
from repro.core.generation.tags import TagExtractor
from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    harvest_lexicon,
)
from repro.core.verification.incompatible import IncompatibleConceptFilter
from repro.core.verification.ner_filter import NEHypernymFilter
from repro.core.verification.syntax_rules import SyntaxRuleFilter
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import render_table
from repro.nlp.ner import NamedEntityRecognizer
from repro.nlp.pmi import PMIStatistics
from repro.nlp.pos import POSTagger
from repro.nlp.segmentation import Segmenter
from repro.taxonomy.model import Entity
from repro.taxonomy.store import Taxonomy

N_ENTITIES = 1_200
CONFIG = PipelineConfig(enable_abstract=False)


def _monolith_build(dump):
    """The seed's hard-coded ``build()`` flow, abstract source skipped."""
    config = CONFIG
    lexicon = harvest_lexicon(dump)
    segmenter = Segmenter(lexicon)
    tagger = POSTagger(lexicon)
    recognizer = NamedEntityRecognizer(lexicon)
    corpus = segmenter.segment_corpus(dump.text_corpus())
    pmi = PMIStatistics()
    pmi.add_corpus(corpus)
    titles = {page.page_id: page.title for page in dump}
    pool = CandidatePool()

    bracket = BracketExtractor(segmenter, pmi, tagger)
    bracket_relations = bracket.extract(dump)
    pool.add(bracket_relations)
    discoverer = PredicateDiscovery(
        min_aligned=config.predicate_min_aligned,
        min_support=config.predicate_min_support,
        max_selected=config.predicate_max_selected,
    )
    discovery = discoverer.discover(dump, bracket_relations)
    pool.add(discoverer.extract(dump, discovery.selected))
    pool.add(TagExtractor().extract(dump))

    pool.reclassify_concept_pages(dump)
    relations = pool.relations()

    relations = SyntaxRuleFilter(segmenter, tagger).filter(relations, titles).kept
    ner = NEHypernymFilter(recognizer, threshold=config.ne_threshold)
    ner.fit(corpus, relations, titles)
    relations = ner.filter(relations).kept
    incompatible = IncompatibleConceptFilter()
    incompatible.fit(relations, dump)
    relations = incompatible.filter(relations).kept

    taxonomy = Taxonomy()
    for relation in relations:
        if relation.hyponym_kind == "entity":
            page_title = titles.get(relation.hyponym)
            if page_title is None:
                continue
            taxonomy.add_entity(Entity(relation.hyponym, page_title))
        taxonomy.add_relation(relation)
    taxonomy.finalize()
    return taxonomy


def test_stage_overhead_benchmark(record):
    dump = SyntheticWorld.generate(seed=9, n_entities=N_ENTITIES).dump()

    # Interleave two runs of each so drift hits both builds equally.
    monolith_seconds, registry_seconds = [], []
    registry_result = None
    for _ in range(2):
        started = perf_counter()
        monolith_taxonomy = _monolith_build(dump)
        monolith_seconds.append(perf_counter() - started)

        builder = CNProbaseBuilder(CONFIG)
        started = perf_counter()
        registry_result = builder.build(dump)
        registry_seconds.append(perf_counter() - started)

    monolith_best = min(monolith_seconds)
    registry_best = min(registry_seconds)
    trace = registry_result.stage_trace

    rows = [
        ["monolith (inline seed flow)", f"{monolith_best:.3f}", ""],
        ["registry-driven builder", f"{registry_best:.3f}", ""],
        ["traced dispatch overhead", f"{trace.overhead_seconds:.4f}",
         f"{100 * trace.overhead_seconds / trace.total_seconds:.2f}%"],
    ]
    for stage in trace.ran():
        rows.append([f"  stage {stage.name} ({stage.kind})",
                     f"{stage.seconds:.3f}", f"{stage.count}"])
    record(render_table(
        ["unit", "seconds", "detail"],
        rows,
        title=f"Stage-registry overhead — {N_ENTITIES:,}-entity world",
    ))

    # Same taxonomy out of both drivers — including insertion order, so
    # the registry (and its execution planner) provably preserves the
    # seed's source-merge order, not just the relation set.
    monolith_keys = [r.key for r in monolith_taxonomy.relations()]
    registry_keys = [r.key for r in registry_result.taxonomy.relations()]
    assert monolith_keys == registry_keys

    # Within noise of the monolith: generous bound so CI jitter never
    # trips it, tight enough to catch an accidentally quadratic driver.
    assert registry_best <= monolith_best * 1.25 + 0.5, (
        f"registry {registry_best:.3f}s vs monolith {monolith_best:.3f}s"
    )
    # Dispatch itself (everything outside stages + driver steps) is free.
    assert trace.overhead_seconds <= max(0.05, 0.02 * trace.total_seconds)
