"""Incremental rebuild equivalence + speedup — small-change refresh.

The PR-4 contract is absolute and asserted here, not just reported:

- ``build_incremental`` on a slightly-changed dump produces a taxonomy
  whose ``Taxonomy.save`` output is **byte-identical** to a full
  rebuild's,
- applying the emitted :class:`TaxonomyDelta` to the previous taxonomy
  reproduces those same bytes,
- the incremental refresh is **faster** than the full rebuild (the
  fast path reuses the previous build's segmenter — unchanged snippets
  replay from its Viterbi memo — recounts PMI exactly, and replays
  page-local generation for unchanged pages).

The perturbation is the realistic nightly shape: a small fraction of
pages get edited brackets/abstracts (entity descriptions evolve), which
keeps the harvested lexicon stable — the condition under which the
resource fast path engages.  Timings land in
``benchmarks/out/BENCH_parallel.json`` under ``"incremental_build"``.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter

from bench_parallel_build import merge_bench_json
from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    PreviousBuild,
    ResourceCache,
)
from repro.encyclopedia import SyntheticWorld
from repro.encyclopedia.model import EncyclopediaDump
from repro.eval.report import render_table

N_ENTITIES = 1_200
EDIT_EVERY = 80  # ~1.25% of pages change between "nights"


def _config() -> PipelineConfig:
    return PipelineConfig(enable_abstract=False)


def perturbed(dump: EncyclopediaDump) -> EncyclopediaDump:
    """A nightly refresh: a few pages' brackets/abstracts edited."""
    pages = []
    for i, page in enumerate(dump.pages):
        if i % EDIT_EVERY == 7 and page.bracket:
            page = dataclasses.replace(
                page,
                bracket="中国著名" + page.bracket,
                abstract=page.abstract + "近年持续活跃。",
            )
        pages.append(page)
    return EncyclopediaDump(pages)


def test_incremental_build_benchmark(record, tmp_path):
    dump_v1 = SyntheticWorld.generate(seed=9, n_entities=N_ENTITIES).dump()
    dump_v2 = perturbed(dump_v1)
    diff = dump_v1.diff(dump_v2)
    assert not diff.is_empty and not diff.added and not diff.removed

    # the nightly process: one builder, warm resource cache
    builder = CNProbaseBuilder(_config(), resource_cache=ResourceCache())
    previous = builder.build(dump_v1)

    started = perf_counter()
    incremental = builder.build_incremental(
        dump_v2, PreviousBuild.from_result(dump_v1, previous)
    )
    incremental_seconds = perf_counter() - started

    # a cold full rebuild of the same new dump, for the baseline cost
    started = perf_counter()
    full = CNProbaseBuilder(
        _config(), resource_cache=ResourceCache()
    ).build(dump_v2)
    full_seconds = perf_counter() - started

    # -- the equivalence contract, asserted ------------------------------
    incremental_path = tmp_path / "incremental.jsonl"
    full_path = tmp_path / "full.jsonl"
    applied_path = tmp_path / "applied.jsonl"
    incremental.taxonomy.save(incremental_path)
    full.taxonomy.save(full_path)
    assert incremental_path.read_bytes() == full_path.read_bytes()

    previous.taxonomy.apply_delta(incremental.delta)
    previous.taxonomy.save(applied_path)
    assert applied_path.read_bytes() == full_path.read_bytes()

    # the fast path actually engaged and the refresh is cheaper
    assert incremental.resource_mode == "incremental"
    assert incremental.stage_trace.get("tag").cache_hit
    assert incremental_seconds < full_seconds, (
        f"incremental refresh ({incremental_seconds:.3f}s) not faster "
        f"than full rebuild ({full_seconds:.3f}s)"
    )

    speedup = full_seconds / incremental_seconds
    rows = [
        ["full rebuild (cold)", f"{full_seconds:.3f}", ""],
        [f"incremental ({diff.n_touched} pages changed)",
         f"{incremental_seconds:.3f}", f"{speedup:.2f}x"],
        ["byte-identical to full rebuild", "yes", ""],
        ["delta applies to previous exactly", "yes", ""],
    ]
    record(render_table(
        ["refresh", "seconds", "speedup"],
        rows,
        title=(
            f"Incremental rebuild — {N_ENTITIES:,}-entity world, "
            f"{diff.n_touched} edited pages"
        ),
    ))

    merge_bench_json("incremental_build", {
        "n_entities": N_ENTITIES,
        "pages_changed": diff.n_touched,
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "incremental_speedup": speedup,
        "resource_mode": incremental.resource_mode,
        "delta": incremental.delta.summary(),
        "identical_output": True,
    })
