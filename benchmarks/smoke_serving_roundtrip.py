"""Server round-trip smoke: start → query → swap → query → shutdown.

Exercises the real deployment path end to end — ``cn-probase serve`` in
a **subprocess** (the CLI, not an in-process server), readiness via
``--ready-file``, queries and an authenticated hot-swap through
:class:`TaxonomyClient`, then a clean ``/admin/shutdown``.  Appends the
timings to ``benchmarks/out/BENCH_parallel.json`` under
``"serving_roundtrip"``.

Run:  python benchmarks/smoke_serving_roundtrip.py
(run_smoke.sh runs it after the cluster benchmark)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))
sys.path.insert(0, str(REPO / "src"))

from bench_parallel_build import merge_bench_json  # noqa: E402
from repro.core.pipeline import PipelineConfig, build_cn_probase  # noqa: E402
from repro.encyclopedia import SyntheticWorld  # noqa: E402
from repro.serving import TaxonomyClient  # noqa: E402

ADMIN_TOKEN = "smoke-admin-token"
READY_TIMEOUT_SECONDS = 30.0
N_QUERIES = 300


def build_taxonomy_file(seed: int, path: Path) -> object:
    world = SyntheticWorld.generate(seed=seed, n_entities=600)
    result = build_cn_probase(
        world.dump(), PipelineConfig(enable_abstract=False)
    )
    result.taxonomy.save(path)
    return result.taxonomy


def cli_env() -> dict[str, str]:
    """Environment for ``python -m repro.cli`` subprocesses (src on path)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def wait_for_ready(ready_file: Path, process: subprocess.Popen) -> str:
    """Base URL once `cn-probase serve --ready-file` reports readiness.

    Shared by every serving smoke script (smoke_incremental_roundtrip
    imports it), so the ready-file protocol lives in one place.  The
    file is ``{"pid": ..., "host": ..., "port": ...}`` JSON written
    only after the socket accepts and removed on clean shutdown; the
    pid is validated against the subprocess we actually spawned, so a
    stale marker left behind by a crashed server (or any other
    process) can never pass for readiness.
    """
    deadline = time.monotonic() + READY_TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(
                f"serve exited early with {process.returncode}:\n"
                f"{process.stdout.read()}"
            )
        if ready_file.exists():
            try:
                payload = json.loads(ready_file.read_text())
            except (ValueError, OSError):
                payload = None  # mid-write or garbage: keep waiting
            if (
                isinstance(payload, dict)
                and payload.get("pid") == process.pid
            ):
                return f"http://{payload['host']}:{payload['port']}"
        time.sleep(0.05)
    raise SystemExit(f"server not ready within {READY_TIMEOUT_SECONDS}s")


def main() -> None:
    started = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        v1_path, v2_path = tmp_path / "v1.jsonl", tmp_path / "v2.jsonl"
        taxonomy_v1 = build_taxonomy_file(5, v1_path)
        build_taxonomy_file(6, v2_path)
        mention = sorted(taxonomy_v1.freeze().as_indexes()[0])[0]

        ready_file = tmp_path / "ready"
        # a stale marker from a "crashed" predecessor: readiness must
        # wait for the real server's pid, not trust this
        ready_file.write_text(
            json.dumps({"pid": 999999999, "host": "127.0.0.1", "port": 1})
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(v1_path),
                "--shards", "4", "--replicas", "2", "--port", "0",
                "--admin-token", ADMIN_TOKEN,
                "--ready-file", str(ready_file),
            ],
            env=cli_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            url = wait_for_ready(ready_file, process)
            client = TaxonomyClient(url, admin_token=ADMIN_TOKEN)

            # start → query
            health = client.healthz()
            assert health["status"] == "ok" and health["version"] == "v1"
            assert client.men2ent(mention), "known mention must resolve"
            query_started = time.perf_counter()
            for _ in range(N_QUERIES):
                client.men2ent(mention)
            query_seconds = time.perf_counter() - query_started

            # → swap
            swap_started = time.perf_counter()
            swapped = client.swap(str(v2_path))
            swap_seconds = time.perf_counter() - swap_started
            assert swapped["version"] == "v2", swapped

            # → query (new version serving, all shards republished)
            assert client.version()["shard_versions"] == ["v2"] * 4
            client.men2ent(mention)
            served = client.server_metrics()
            assert served["swaps"] == 1

            # → shutdown (clean exit removes the readiness marker)
            client.shutdown_server()
            process.wait(timeout=15)
            assert not ready_file.exists(), "stale ready file after shutdown"
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    total_seconds = time.perf_counter() - started
    merge_bench_json("serving_roundtrip", {
        "queries": N_QUERIES,
        "query_ops": N_QUERIES / query_seconds,
        "swap_seconds": swap_seconds,
        "total_seconds": total_seconds,
        "round_trip": "start->query->swap->query->shutdown",
        "ok": True,
    })
    print(f"serving round trip ok: {N_QUERIES / query_seconds:,.0f} "
          f"single queries/s over HTTP, swap in {swap_seconds * 1e3:.0f}ms, "
          f"{total_seconds:.1f}s end to end (build included)")


if __name__ == "__main__":
    main()
