"""Process-backend smoke: the real CLI on real cores, byte-for-byte.

The tier-1 suite proves backend equivalence in-process; this smoke
proves it through the deployment surface:

1. ``cn-probase generate`` a small dump (CLI subprocess),
2. ``cn-probase build`` it twice — once ``--backend serial`` and once
   ``--backend processes --workers 2 --parallel-floor 0`` (the world
   is far below the default work floor, so the floor must be forced
   to make the pool actually spin up),
3. assert the two taxonomies are byte-identical,
4. assert the ``<out>.trace.json`` sidecar of the process build says
   ``backend: processes`` and shows at least one multi-worker stage,
5. ``cn-probase stages --trace`` renders that sidecar with the
   backend column.

Appends its numbers under ``parallel_build.backends.processes_smoke``
in ``benchmarks/out/BENCH_parallel.json`` — merged into the section the
bench wrote, never replacing it.

Run:  python benchmarks/smoke_process_backend.py
(run_smoke.sh runs it after the benches)
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))
sys.path.insert(0, str(REPO / "src"))

from bench_parallel_build import BENCH_JSON, merge_bench_json  # noqa: E402
from smoke_serving_roundtrip import cli_env  # noqa: E402

N_ENTITIES = 300


def run_cli(*args: str) -> str:
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=cli_env(),
        check=True,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return completed.stdout


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        dump = tmp_path / "dump.jsonl"
        out_serial = tmp_path / "serial.jsonl"
        out_proc = tmp_path / "processes.jsonl"

        run_cli("generate", "--entities", str(N_ENTITIES), "--seed", "11",
                "--out", str(dump))

        serial_started = time.perf_counter()
        run_cli("build", "--dump", str(dump), "--out", str(out_serial),
                "--no-abstract", "--backend", "serial")
        serial_seconds = time.perf_counter() - serial_started

        proc_started = time.perf_counter()
        run_cli("build", "--dump", str(dump), "--out", str(out_proc),
                "--no-abstract", "--backend", "processes",
                "--workers", "2", "--parallel-floor", "0")
        proc_seconds = time.perf_counter() - proc_started

        assert out_serial.read_bytes() == out_proc.read_bytes(), (
            "process-backend CLI build must be byte-identical to serial"
        )

        sidecar = json.loads(
            Path(f"{out_proc}.trace.json").read_text(encoding="utf-8")
        )
        assert sidecar["backend"] == "processes", sidecar["backend"]
        assert sidecar["workers"] == 2
        pooled = [s for s in sidecar["stages"].values()
                  if s.get("workers", 1) > 1]
        assert pooled, "no stage ran on the process pool"
        assert all(s["backend"] == "processes" for s in pooled)

        rendered = run_cli("stages", "--trace", f"{out_proc}.trace.json")
        assert "backend" in rendered and "processes" in rendered
        assert "backend=processes" in rendered

    # Merge into the bench's parallel_build section instead of
    # replacing it: merge_bench_json swaps whole top-level keys, so
    # read-modify-write the section to keep the bench's backends.
    section = {}
    if BENCH_JSON.exists():
        section = json.loads(
            BENCH_JSON.read_text(encoding="utf-8")
        ).get("parallel_build", {})
    section.setdefault("backends", {})["processes_smoke"] = {
        "workers": 2,
        "n_entities": N_ENTITIES,
        "serial_cli_seconds": serial_seconds,
        "processes_cli_seconds": proc_seconds,
        "identical_output": True,
        "surface": "cli",
    }
    merge_bench_json("parallel_build", section)
    print(f"process backend smoke ok: {N_ENTITIES}-entity CLI build "
          f"byte-identical (serial {serial_seconds:.2f}s, "
          f"processes/2 {proc_seconds:.2f}s)")


if __name__ == "__main__":
    main()
