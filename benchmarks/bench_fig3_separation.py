"""Figure 3 — the separation algorithm on 蚂蚁金服首席战略官.

The paper's worked example: the bracket compound of 陈龙 segments into
{蚂蚁, 金服, 首席, 战略官}, the PMI-guided window brackets it as
((蚂蚁⊕金服)(首席⊕战略官)), and the hypernyms read off the rightmost
path are 首席战略官 and 战略官.  The benchmarked unit is bracket
extraction over every bracketed page of the shared dump.
"""

from __future__ import annotations

import pytest

from repro.core.generation.separation import BracketExtractor, SeparationAlgorithm
from repro.eval.report import render_table
from repro.nlp.pmi import PMIStatistics
from repro.nlp.segmentation import Segmenter


@pytest.fixture(scope="module")
def figure3_setup(world):
    # The worked example runs on a general-purpose lexicon: 首席战略官 must
    # NOT be a dictionary word — the separation algorithm has to discover
    # it, exactly the situation of the paper's Figure 3.
    from repro.nlp.lexicon import Lexicon

    demo_lexicon = Lexicon.base()
    demo_lexicon.add("蚂蚁", 500, "n")
    demo_lexicon.add("金服", 300, "n")
    demo_segmenter = Segmenter(demo_lexicon)
    pmi = PMIStatistics()
    pmi.add_corpus(demo_segmenter.segment_corpus(world.dump().text_corpus()))
    # The demo collocations of Figure 3 (as they would occur in news text).
    for _ in range(50):
        pmi.add_sequence(["蚂蚁", "金服"])
    for _ in range(30):
        pmi.add_sequence(["首席", "战略官"])
    return demo_segmenter, pmi


def test_fig3_benchmark(benchmark, world, figure3_setup, record):
    segmenter, pmi = figure3_setup
    algorithm = SeparationAlgorithm(pmi)
    words = segmenter.segment("蚂蚁金服首席战略官")
    assert words == ["蚂蚁", "金服", "首席", "战略官"]
    hypernyms = algorithm.hypernyms(words)
    assert hypernyms == ["首席战略官", "战略官"]

    extractor = BracketExtractor(segmenter, pmi)
    pages = [p for p in world.dump() if p.bracket]

    relations = benchmark(lambda: extractor.extract(pages))
    assert relations

    tree = algorithm.build_tree(words)
    record(render_table(
        ["step", "value"],
        [
            ["input compound", "蚂蚁金服首席战略官"],
            ["segmentation", " / ".join(words)],
            ["tree", f"(({tree.left.text})({tree.right.text}))"],
            ["hypernyms (rightmost path)", "、".join(hypernyms)],
            ["bracketed pages processed", str(len(pages))],
            ["relations extracted", str(len(relations))],
        ],
        title="Figure 3 — separation algorithm worked example",
    ))
