"""Telemetry overhead — the unified registry must ride along for free.

The observability acceptance gate: with the metrics registry, span
plumbing and event log wired in, the in-process serving hot path stays
within 5% of its un-instrumented ops/sec.  The only *new* per-call
cost on an untraced request is the ambient ``current_trace_id()``
check inside ``TaxonomyService._serve``, so the baseline is measured
with that hook stubbed to a constant — everything else (the
``APILatency`` ledgers, snapshot pinning) predates the telemetry
subsystem and is identical on both sides.

Also reports (without asserting) the fully-traced worst case — every
call inside a trace context recording a span — so the sampling stride
chosen by the workload harness has a measured justification.

Numbers land in ``benchmarks/out/BENCH_parallel.json`` under
``"obs_overhead"``.
"""

from __future__ import annotations

from time import perf_counter

import repro.taxonomy.service as service_module
from bench_parallel_build import merge_bench_json
from repro.core.pipeline import CNProbaseBuilder, PipelineConfig, ResourceCache
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import render_table
from repro.obs import fresh_hub, trace_context
from repro.taxonomy.service import TaxonomyService
from repro.workloads import ArgumentPools, TableIICallStream

N_ENTITIES = 800
N_CALLS = 60_000
ROUNDS = 5
MAX_OVERHEAD = 0.05


def _build_taxonomy():
    dump = SyntheticWorld.generate(seed=11, n_entities=N_ENTITIES).dump()
    builder = CNProbaseBuilder(
        PipelineConfig(enable_abstract=False), resource_cache=ResourceCache()
    )
    return builder.build(dump).taxonomy


def _handlers(service):
    return {
        "men2ent": service.men2ent,
        "getConcept": service.get_concepts,
        "getEntity": service.get_entities,
    }


def _timed_pass(calls, handlers) -> float:
    started = perf_counter()
    for call in calls:
        handlers[call.api](call.argument)
    return perf_counter() - started


def test_obs_overhead_benchmark(record):
    taxonomy = _build_taxonomy()
    calls = TableIICallStream(
        ArgumentPools.from_taxonomy(taxonomy), seed=17
    ).generate(N_CALLS)

    with fresh_hub():
        service = TaxonomyService(taxonomy)
        handlers = _handlers(service)

        # Warm every cache with a full pass so all timings run
        # steady-state.  The box this runs on throttles, so a single
        # best-of comparison is noise-dominated: instead each round
        # times both paths back to back (order alternating to cancel
        # drift) and the gate compares the per-leg *minima* across
        # rounds — scheduler noise only ever adds time, so the
        # fastest observation of each leg is its least contaminated
        # estimate (the ``timeit`` rationale).
        _timed_pass(calls, handlers)

        def _baseline_pass():
            # The trace hook stubbed out — the pre-telemetry hot
            # path, with the unavoidable function call kept so the
            # comparison is conservative.
            real_hook = service_module.current_trace_id
            service_module.current_trace_id = lambda: None
            try:
                return _timed_pass(calls, handlers)
            finally:
                service_module.current_trace_id = real_hook

        def _measure():
            instrumented_best = baseline_best = float("inf")
            round_ratios = []
            for round_no in range(ROUNDS):
                if round_no % 2 == 0:
                    instrumented = _timed_pass(calls, handlers)
                    baseline = _baseline_pass()
                else:
                    baseline = _baseline_pass()
                    instrumented = _timed_pass(calls, handlers)
                instrumented_best = min(instrumented_best, instrumented)
                baseline_best = min(baseline_best, baseline)
                round_ratios.append(instrumented / baseline)
            return instrumented_best, baseline_best, round_ratios

        # A shared box can throttle for longer than one whole
        # measurement, which no estimator survives — so a breach of
        # the gate earns a full re-measurement, and only a breach on
        # every attempt fails the run.
        for _ in range(3):
            instrumented_seconds, baseline_seconds, ratios = _measure()
            if instrumented_seconds / baseline_seconds - 1.0 <= MAX_OVERHEAD:
                break

        # Worst case: every call traced, every call records a span.
        traced_best = float("inf")
        for _ in range(ROUNDS):
            with trace_context("bench-trace"):
                traced_best = min(
                    traced_best, _timed_pass(calls, handlers)
                )

    ops = lambda seconds: N_CALLS / seconds  # noqa: E731
    overhead = instrumented_seconds / baseline_seconds - 1.0
    traced_overhead = (traced_best - baseline_seconds) / baseline_seconds

    record(render_table(
        ["path", "ops/s", "vs baseline"],
        [
            ["trace hook stubbed (baseline)",
             f"{ops(baseline_seconds):,.0f}", ""],
            ["telemetry on, untraced",
             f"{ops(instrumented_seconds):,.0f}",
             f"{overhead:+.2%}"],
            ["telemetry on, every call traced",
             f"{ops(traced_best):,.0f}",
             f"{traced_overhead:+.2%}"],
        ],
        title=(
            f"Telemetry overhead — {N_CALLS:,} Table-II calls, "
            f"{ROUNDS} paired rounds (gate: untraced within "
            f"{MAX_OVERHEAD:.0%})"
        ),
    ))

    merge_bench_json("obs_overhead", {
        "n_calls": N_CALLS,
        "rounds": ROUNDS,
        "baseline_ops_per_s": ops(baseline_seconds),
        "instrumented_ops_per_s": ops(instrumented_seconds),
        "traced_ops_per_s": ops(traced_best),
        "untraced_overhead": overhead,
        "untraced_round_ratios": [round(r, 4) for r in ratios],
        "traced_overhead": traced_overhead,
        "max_overhead": MAX_OVERHEAD,
    })

    assert overhead <= MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.2%} exceeds the "
        f"{MAX_OVERHEAD:.0%} budget "
        f"({ops(baseline_seconds):,.0f} -> "
        f"{ops(instrumented_seconds):,.0f} ops/s)"
    )
