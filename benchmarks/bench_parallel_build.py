"""Parallel build correctness + speedup across backends.

The ExecutionPlan promise is absolute: a build with any backend and any
worker count produces a byte-identical taxonomy.  This bench builds the
same dump with ``serial``, ``threads`` (workers=4) and ``processes``
(workers=2 and 4) and asserts

- all four ``Taxonomy.save`` outputs are byte-for-byte equal,
- per-verifier ``removed_by`` counts match exactly,
- the StageTrace lists stages in the same (registration) order,
- a rebuild on the unchanged dump hits the resource cache,
- the threads backend never regresses below 0.9x serial — the work
  floor keeps pools parked when the dump is too small to amortise
  them, which is exactly what this world exercises,
- the processes backend never regresses below 0.9x serial *when the
  machine has a second core to give it* (on a single-CPU box the
  fork + pickle tax has no parallelism to pay for itself with, so the
  numbers are recorded honestly under ``cpu_limited`` instead).

Timings land in ``benchmarks/out/BENCH_parallel.json`` (the perf
trajectory future PRs regress against): the legacy ``build`` section
keeps its historical shape, and the new ``parallel_build`` section
carries the per-backend numbers plus the CPU budget they ran under.
"""

from __future__ import annotations

import os
from pathlib import Path
from time import perf_counter

from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    ResourceCache,
)
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import render_table
from repro.workloads.report import merge_bench_entry

N_ENTITIES = 1_200
WORKERS = 4
#: ISSUE 9 acceptance target for processes at workers=4 — only
#: enforceable when the container actually has four cores.
TARGET_PROCESS_SPEEDUP = 2.5
OUT_DIR = Path(__file__).parent / "out"
BENCH_JSON = OUT_DIR / "BENCH_parallel.json"


def merge_bench_json(key: str, payload: dict) -> None:
    """Merge one bench's section into BENCH_parallel.json.

    Delegates to :func:`repro.workloads.report.merge_bench_entry`:
    the parent directory is created if missing and the update is
    atomic (temp file + ``os.replace``), so a crashed bench can never
    leave a truncated perf trajectory behind.
    """
    merge_bench_entry(BENCH_JSON, key, payload)


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # macOS has no sched_getaffinity
        return os.cpu_count() or 1


def _config(workers: int, backend: str = "threads") -> PipelineConfig:
    return PipelineConfig(
        enable_abstract=False, workers=workers, backend=backend
    )


def _timed_build(dump, config):
    """Best-of-2 wall time with isolated caches; returns (result, s)."""
    best, result = None, None
    for _ in range(2):
        builder = CNProbaseBuilder(config, resource_cache=ResourceCache())
        started = perf_counter()
        result = builder.build(dump)
        seconds = perf_counter() - started
        best = seconds if best is None else min(best, seconds)
    return result, best


def test_parallel_build_benchmark(record, tmp_path):
    dump = SyntheticWorld.generate(seed=9, n_entities=N_ENTITIES).dump()
    cpus = available_cpus()

    serial, serial_seconds = _timed_build(dump, _config(1, "serial"))
    threads, threads_seconds = _timed_build(
        dump, _config(WORKERS, "threads")
    )
    proc2, proc2_seconds = _timed_build(dump, _config(2, "processes"))
    proc4, proc4_seconds = _timed_build(
        dump, _config(WORKERS, "processes")
    )

    # Rebuild on the unchanged dump: resource cache replays the lexicon
    # harvest, corpus segmentation and PMI counting.
    cached_builder = CNProbaseBuilder(
        _config(WORKERS, "threads"), resource_cache=ResourceCache()
    )
    cached_builder.build(dump)
    started = perf_counter()
    cached = cached_builder.build(dump)
    cached_seconds = perf_counter() - started

    # -- correctness: byte-identical output on every backend -------------
    paths = {}
    for name, result in [("serial", serial), ("threads", threads),
                         ("proc2", proc2), ("proc4", proc4)]:
        paths[name] = tmp_path / f"{name}.jsonl"
        result.taxonomy.save(paths[name])
    reference = paths["serial"].read_bytes()
    for name, path in paths.items():
        assert path.read_bytes() == reference, f"{name} diverged"

    for other in (threads, proc2, proc4):
        assert {k: len(v) for k, v in serial.removed_by.items()} == \
            {k: len(v) for k, v in other.removed_by.items()}
        assert [r.name for r in serial.stage_trace.records] == \
            [r.name for r in other.stage_trace.records]
    assert cached.stage_trace.get("resources").cache_hit
    assert not serial.stage_trace.get("resources").cache_hit

    # The work floor calls: this world is big enough for process
    # fan-out (waves + verifier shards clear PROCESS_WORK_FLOOR) but
    # below THREAD_WORK_FLOOR, so threads must have stayed inline —
    # that is the regression fix for small-world pool overhead.
    assert proc4.stage_trace.get("syntax").workers == WORKERS
    assert proc4.stage_trace.get("syntax").backend == "processes"
    assert threads.stage_trace.get("syntax").workers == 1

    threads_speedup = serial_seconds / threads_seconds
    proc2_speedup = serial_seconds / proc2_seconds
    proc4_speedup = serial_seconds / proc4_seconds
    cached_speedup = serial_seconds / cached_seconds

    # -- perf gates, honest about the CPU budget -------------------------
    assert threads_speedup >= 0.9, (
        f"threads backend regressed to {threads_speedup:.2f}x serial — "
        "the work floor should have kept pools parked on this world"
    )
    cpu_limited = cpus < 2
    if cpus >= 2:
        assert proc2_speedup >= 0.9, (
            f"processes (workers=2) at {proc2_speedup:.2f}x serial "
            f"with {cpus} CPUs available"
        )
    if cpus >= WORKERS:
        assert proc4_speedup > TARGET_PROCESS_SPEEDUP, (
            f"processes (workers={WORKERS}) at {proc4_speedup:.2f}x "
            f"serial with {cpus} CPUs — target {TARGET_PROCESS_SPEEDUP}x"
        )

    rows = [
        ["serial (workers=1)", f"{serial_seconds:.3f}", ""],
        [f"threads (workers={WORKERS}, floored inline)",
         f"{threads_seconds:.3f}", f"{threads_speedup:.2f}x"],
        ["processes (workers=2)", f"{proc2_seconds:.3f}",
         f"{proc2_speedup:.2f}x"],
        [f"processes (workers={WORKERS})", f"{proc4_seconds:.3f}",
         f"{proc4_speedup:.2f}x"],
        ["cached rebuild (same dump)", f"{cached_seconds:.3f}",
         f"{cached_speedup:.2f}x"],
        ["byte-identical output", "yes", ""],
        ["cpus available", str(cpus),
         "cpu-limited" if cpu_limited else ""],
    ]
    record(render_table(
        ["build", "seconds", "speedup"],
        rows,
        title=f"Parallel build — {N_ENTITIES:,}-entity world",
    ))

    # Legacy section: keeps the perf trajectory's historical keys
    # (parallel_* tracked the threads backend before processes landed).
    merge_bench_json("build", {
        "n_entities": N_ENTITIES,
        "workers": WORKERS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": threads_seconds,
        "parallel_speedup": threads_speedup,
        "cached_rebuild_seconds": cached_seconds,
        "cached_rebuild_speedup": cached_speedup,
        "identical_output": True,
    })
    merge_bench_json("parallel_build", {
        "n_entities": N_ENTITIES,
        "cpus": cpus,
        "cpu_limited": cpu_limited,
        "serial_seconds": serial_seconds,
        "target_process_speedup": TARGET_PROCESS_SPEEDUP,
        "backends": {
            "threads": {
                "workers": WORKERS,
                "seconds": threads_seconds,
                "speedup": threads_speedup,
            },
            "processes_w2": {
                "workers": 2,
                "seconds": proc2_seconds,
                "speedup": proc2_speedup,
            },
            "processes_w4": {
                "workers": WORKERS,
                "seconds": proc4_seconds,
                "speedup": proc4_speedup,
            },
        },
        "identical_output": True,
    })
