"""Parallel build correctness + speedup — workers=1 vs workers=4.

The ExecutionPlan promise is absolute: a build with any worker count
produces a byte-identical taxonomy.  This bench builds the same dump
serially and with four workers and asserts

- the two ``Taxonomy.save`` outputs are byte-for-byte equal,
- per-verifier ``removed_by`` counts match exactly,
- the StageTrace lists stages in the same (registration) order,
- a rebuild on the unchanged dump hits the resource cache.

Timings land in ``benchmarks/out/BENCH_parallel.json`` (the perf
trajectory future PRs regress against).  The speedup is *reported*, not
asserted: the stages are pure CPython, so the GIL caps what threads can
win — the cached-rebuild line is where the wall-clock drops.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter

from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    ResourceCache,
)
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import render_table
from repro.workloads.report import merge_bench_entry

N_ENTITIES = 1_200
WORKERS = 4
OUT_DIR = Path(__file__).parent / "out"
BENCH_JSON = OUT_DIR / "BENCH_parallel.json"


def merge_bench_json(key: str, payload: dict) -> None:
    """Merge one bench's section into BENCH_parallel.json.

    Delegates to :func:`repro.workloads.report.merge_bench_entry`:
    the parent directory is created if missing and the update is
    atomic (temp file + ``os.replace``), so a crashed bench can never
    leave a truncated perf trajectory behind.
    """
    merge_bench_entry(BENCH_JSON, key, payload)


def _config(workers: int) -> PipelineConfig:
    return PipelineConfig(enable_abstract=False, workers=workers)


def test_parallel_build_benchmark(record, tmp_path):
    dump = SyntheticWorld.generate(seed=9, n_entities=N_ENTITIES).dump()

    serial_builder = CNProbaseBuilder(
        _config(1), resource_cache=ResourceCache()
    )
    started = perf_counter()
    serial = serial_builder.build(dump)
    serial_seconds = perf_counter() - started

    parallel_builder = CNProbaseBuilder(
        _config(WORKERS), resource_cache=ResourceCache()
    )
    started = perf_counter()
    parallel = parallel_builder.build(dump)
    parallel_seconds = perf_counter() - started

    # Rebuild on the unchanged dump: resource cache replays the lexicon
    # harvest, corpus segmentation and PMI counting.
    started = perf_counter()
    cached = parallel_builder.build(dump)
    cached_seconds = perf_counter() - started

    # -- correctness: byte-identical output, identical verification ------
    serial_path = tmp_path / "serial.jsonl"
    parallel_path = tmp_path / "parallel.jsonl"
    serial.taxonomy.save(serial_path)
    parallel.taxonomy.save(parallel_path)
    assert serial_path.read_bytes() == parallel_path.read_bytes()

    assert {k: len(v) for k, v in serial.removed_by.items()} == \
        {k: len(v) for k, v in parallel.removed_by.items()}
    assert [r.name for r in serial.stage_trace.records] == \
        [r.name for r in parallel.stage_trace.records]
    assert cached.stage_trace.get("resources").cache_hit
    assert not serial.stage_trace.get("resources").cache_hit

    sharded = parallel.stage_trace.get("syntax")
    assert sharded is not None and sharded.workers == WORKERS

    speedup = serial_seconds / parallel_seconds
    cached_speedup = serial_seconds / cached_seconds
    rows = [
        ["serial (workers=1)", f"{serial_seconds:.3f}", ""],
        [f"parallel (workers={WORKERS})", f"{parallel_seconds:.3f}",
         f"{speedup:.2f}x"],
        ["cached rebuild (same dump)", f"{cached_seconds:.3f}",
         f"{cached_speedup:.2f}x"],
        ["byte-identical output", "yes", ""],
    ]
    record(render_table(
        ["build", "seconds", "speedup"],
        rows,
        title=f"Parallel build — {N_ENTITIES:,}-entity world",
    ))

    merge_bench_json("build", {
        "n_entities": N_ENTITIES,
        "workers": WORKERS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": speedup,
        "cached_rebuild_seconds": cached_seconds,
        "cached_rebuild_speedup": cached_speedup,
        "identical_output": True,
    })
