"""Serving throughput — per-call-sorted vs cached vs read-optimized.

Replays a Table-II-mix workload against four serving paths over the
same built taxonomy:

1. **per-call sorted** — the seed's lookup: ``sorted()`` over the index
   set on every call (reconstructed here inline, since the store now
   memoises),
2. **store (memoised)** — ``Taxonomy`` lookups with the per-key sorted
   cache warm,
3. **service singles / batched** — the full :class:`TaxonomyService`
   path (snapshot pin + latency metrics per call),
4. **read-optimized view** — the frozen
   :class:`ReadOptimizedTaxonomy` a snapshot serves from: dict hit +
   list copy.

Asserts the read-optimized path answers identically to the seed path
and is at least 2x its ops/sec; numbers land in
``benchmarks/out/BENCH_parallel.json`` under ``"serving"``.
"""

from __future__ import annotations

from time import perf_counter

from bench_parallel_build import merge_bench_json
from repro.core.pipeline import CNProbaseBuilder, PipelineConfig, ResourceCache
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import render_table
from repro.taxonomy.service import TaxonomyService
from repro.workloads import ArgumentPools, TableIICallStream

N_ENTITIES = 1_200
N_CALLS = 40_000
BATCH_SIZE = 64
MIN_SPEEDUP = 2.0


def _build_taxonomy():
    dump = SyntheticWorld.generate(seed=9, n_entities=N_ENTITIES).dump()
    builder = CNProbaseBuilder(
        PipelineConfig(enable_abstract=False), resource_cache=ResourceCache()
    )
    return builder.build(dump).taxonomy


def _per_call_sorted_handlers(taxonomy):
    """The seed's lookup path: sort the index set on every call."""
    mention_index = taxonomy._mention_index
    entity_hypernyms = taxonomy._entity_hypernyms
    concept_entities = taxonomy._concept_entities
    return {
        "men2ent": lambda arg: sorted(mention_index.get(arg, ())),
        "getConcept": lambda arg: sorted(entity_hypernyms.get(arg, ())),
        "getEntity": lambda arg: sorted(concept_entities.get(arg, ())),
    }


def _store_handlers(taxonomy):
    return {
        "men2ent": taxonomy.men2ent,
        "getConcept": taxonomy.get_concepts,
        "getEntity": taxonomy.get_entities,
    }


def _timed(calls, handlers) -> tuple[float, list[list[str]]]:
    """Best-of-two timing: the first pass warms every per-path cache
    (store memos, allocator, branch predictors) so paths are compared
    steady-state, the way a long-lived server runs them."""
    best = float("inf")
    results: list[list[str]] = []
    for _ in range(2):
        started = perf_counter()
        results = [handlers[call.api](call.argument) for call in calls]
        best = min(best, perf_counter() - started)
    return best, results


def test_serving_throughput_benchmark(record):
    taxonomy = _build_taxonomy()
    calls = TableIICallStream(
        ArgumentPools.from_taxonomy(taxonomy), seed=13
    ).generate(N_CALLS)
    service = TaxonomyService(taxonomy)
    read_view = service.snapshot.read_view

    baseline_seconds, baseline_results = _timed(
        calls, _per_call_sorted_handlers(taxonomy)
    )

    store_seconds, store_results = _timed(calls, _store_handlers(taxonomy))

    single_handlers = {
        "men2ent": service.men2ent,
        "getConcept": service.get_concepts,
        "getEntity": service.get_entities,
    }
    service_seconds, service_results = _timed(calls, single_handlers)

    batched = {
        "men2ent": service.men2ent_batch,
        "getConcept": service.get_concepts_batch,
        "getEntity": service.get_entities_batch,
    }
    batched_seconds = float("inf")
    for _ in range(2):
        buffers: dict[str, list[str]] = {name: [] for name in batched}
        batched_results = []
        started = perf_counter()
        for call in calls:
            buffer = buffers[call.api]
            buffer.append(call.argument)
            if len(buffer) >= BATCH_SIZE:
                batched_results.extend(batched[call.api](buffer))
                buffer.clear()
        for name, buffer in buffers.items():
            if buffer:
                batched_results.extend(batched[name](buffer))
        batched_seconds = min(batched_seconds, perf_counter() - started)

    view_seconds, view_results = _timed(calls, _store_handlers(read_view))

    # Identical answers on every path that preserves call order.
    assert view_results == baseline_results
    assert store_results == baseline_results
    assert service_results == baseline_results

    ops = lambda seconds: N_CALLS / seconds  # noqa: E731
    speedup = ops(view_seconds) / ops(baseline_seconds)
    rows = [
        ["per-call sorted (seed path)", f"{ops(baseline_seconds):,.0f}", ""],
        ["store, memoised sorted", f"{ops(store_seconds):,.0f}",
         f"{ops(store_seconds) / ops(baseline_seconds):.2f}x"],
        ["service singles (metrics on)", f"{ops(service_seconds):,.0f}",
         f"{ops(service_seconds) / ops(baseline_seconds):.2f}x"],
        [f"service batched ({BATCH_SIZE})", f"{ops(batched_seconds):,.0f}",
         f"{ops(batched_seconds) / ops(baseline_seconds):.2f}x"],
        ["read-optimized view", f"{ops(view_seconds):,.0f}",
         f"{speedup:.2f}x"],
    ]
    record(render_table(
        ["serving path", "ops/sec", "vs seed"],
        rows,
        title=(
            f"Serving throughput — {N_CALLS:,} Table-II-mix calls, "
            f"{N_ENTITIES:,}-entity taxonomy"
        ),
    ))

    merge_bench_json("serving", {
        "n_calls": N_CALLS,
        "batch_size": BATCH_SIZE,
        "per_call_sorted_ops": ops(baseline_seconds),
        "store_memoised_ops": ops(store_seconds),
        "service_single_ops": ops(service_seconds),
        "service_batched_ops": ops(batched_seconds),
        "read_optimized_ops": ops(view_seconds),
        "read_optimized_speedup": speedup,
    })

    assert speedup >= MIN_SPEEDUP, (
        f"read-optimized view is only {speedup:.2f}x the per-call-sorted "
        f"path; need >= {MIN_SPEEDUP}x"
    )
