"""Ablation — contribution of each verification heuristic.

The paper argues the verification module is what lifts multi-source
extraction from Bigcilin-level precision (~90%) to 95%.  This ablation
rebuilds the taxonomy with each verifier disabled in turn and with all
three off, reporting precision deltas.  The benchmarked unit is one
no-verification build (the generation module alone).
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.eval.metrics import sample_precision
from repro.eval.report import format_count, format_percent, render_table


def _config(**flags) -> PipelineConfig:
    # the neural source is orthogonal to the verifier ablation and slow;
    # leaving it out keeps each ablation build fast
    return PipelineConfig(enable_abstract=False, **flags)


@pytest.fixture(scope="module")
def ablations(world, oracle):
    variants = {
        "all verifiers": _config(),
        "no syntax rules": _config(enable_syntax=False),
        "no NE filter": _config(enable_ner=False),
        "no incompatible": _config(enable_incompatible=False),
        "no verification": _config(
            enable_syntax=False, enable_ner=False, enable_incompatible=False,
        ),
    }
    rows = {}
    for name, config in variants.items():
        result = build_cn_probase(world.dump(), config)
        relations = result.taxonomy.relations()
        precision = sample_precision(relations, oracle, 2000, seed=1).precision
        rows[name] = (len(relations), precision)
    return rows


def test_ablation_verification_benchmark(benchmark, world, ablations, record):
    result = benchmark.pedantic(
        lambda: build_cn_probase(
            world.dump(),
            _config(enable_syntax=False, enable_ner=False,
                    enable_incompatible=False),
        ),
        rounds=1, iterations=1,
    )
    assert len(result.taxonomy) > 0

    full_precision = ablations["all verifiers"][1]
    rows = [
        [name, format_count(count), format_percent(precision),
         f"{precision - full_precision:+.1%}"]
        for name, (count, precision) in ablations.items()
    ]
    record(render_table(
        ["variant", "# isA", "precision", "Δ vs full"],
        rows,
        title="Ablation — verification heuristics "
              "(paper: verification lifts ~90% → 95%)",
    ))

    none = ablations["no verification"][1]
    assert full_precision > none + 0.025
    # each single verifier contributes (dropping it should not help)
    for name in ("no syntax rules", "no NE filter", "no incompatible"):
        assert ablations[name][1] <= full_precision + 0.005, name
