"""Table II — the three public APIs and their usage statistics.

Paper (six months on Aliyun): men2ent 43,896,044 calls, getConcept
13,815,076, getEntity 25,793,372 — a 0.53 / 0.17 / 0.31 mix.  The
workload generator replays that mix at reduced volume against the built
taxonomy; the benchmarked unit is serving throughput.
"""

from __future__ import annotations

import pytest

from repro.eval.report import format_count, format_percent, render_table
from repro.taxonomy.api import PAPER_API_CALLS, TaxonomyAPI
from repro.workloads import ArgumentPools, TableIICallStream

N_CALLS = 30_000


def _serve_one(api: TaxonomyAPI, call) -> None:
    if call.api == "men2ent":
        api.men2ent(call.argument)
    elif call.api == "getConcept":
        api.get_concept(call.argument)
    else:
        api.get_entity(call.argument)


@pytest.fixture(scope="module")
def served(cn_probase):
    api = TaxonomyAPI(cn_probase.taxonomy)
    pools = ArgumentPools.from_taxonomy(cn_probase.taxonomy)
    for call in TableIICallStream(pools, seed=2).generate(N_CALLS):
        _serve_one(api, call)
    return api.usage


def test_table2_benchmark(benchmark, cn_probase, served, record):
    api = TaxonomyAPI(cn_probase.taxonomy)
    pools = ArgumentPools.from_taxonomy(cn_probase.taxonomy)
    calls = TableIICallStream(pools, seed=3).generate(5_000)

    def serve() -> int:
        for call in calls:
            _serve_one(api, call)
        return api.usage.total_calls

    total = benchmark(serve)
    assert total >= 5_000

    rows = []
    for name in ("men2ent", "getConcept", "getEntity"):
        rows.append([
            name,
            format_count(served.calls[name]),
            format_percent(served.mix()[name]),
            format_percent(PAPER_API_CALLS[name] / sum(PAPER_API_CALLS.values())),
            format_percent(served.hit_rate(name)),
        ])
    record(render_table(
        ["API name", "calls", "mix", "paper mix", "hit rate"],
        rows,
        title=f"Table II — API usage over {N_CALLS:,} replayed calls",
    ))
    # mix shape: men2ent > getEntity > getConcept, matching the paper
    assert served.calls["men2ent"] > served.calls["getEntity"]
    assert served.calls["getEntity"] > served.calls["getConcept"]
    for name in ("men2ent", "getConcept", "getEntity"):
        assert served.hit_rate(name) > 0.8
