"""QA coverage (Section IV-B): 91.68% on NLPCC2016, 2.14 concepts/entity.

The paper: of 23,472 open-domain questions, CN-Probase covers 21,520
(91.68%); covered entities carry 2.14 concepts on average.  The synthetic
question set replays the same protocol; the benchmarked unit is the
coverage scan (maximum forward match over the mention index).
"""

from __future__ import annotations

from repro.eval.coverage import qa_coverage
from repro.eval.qa_dataset import generate_questions
from repro.eval.report import format_percent, render_table

N_QUESTIONS = 4000


def test_qa_coverage_benchmark(benchmark, world, cn_probase, record):
    questions = generate_questions(world, N_QUESTIONS, seed=11)

    report = benchmark(lambda: qa_coverage(cn_probase.taxonomy, questions))

    record(render_table(
        ["metric", "measured", "paper"],
        [
            ["questions", str(report.n_questions), "23,472"],
            ["covered", str(report.n_covered), "21,520"],
            ["coverage", format_percent(report.coverage), "91.68%"],
            ["concepts / covered entity",
             f"{report.avg_concepts_per_covered_entity:.2f}", "2.14"],
        ],
        title="QA coverage (NLPCC2016-style synthetic question set)",
    ))

    # shape: coverage lands in the low-to-mid 90s, not 100%
    assert 0.88 <= report.coverage <= 0.97, report.coverage
    # covered entities average about two concepts
    assert 1.5 <= report.avg_concepts_per_covered_entity <= 3.5
