"""Chaos smoke: kill → publish → restart → probe auto-resync → converge.

Two passes over the self-healing contract:

1. **Deterministic ladder** — a 3-replica chaos cluster loses one
   replica, a delta publish lands while it is down, the replica comes
   back stale (restart rebuilds from the base snapshot), and the next
   probe sweep must pull the catch-up chain so every replica reports
   the *same content hash* as the publisher.
2. **Under load** — the ``replica_chaos`` built-in scenario end to end
   through the workload harness (seeded traffic + scheduled kill /
   restart / wire faults), asserting zero mixed-version answers and
   full convergence.

Appends the verdicts to ``benchmarks/out/BENCH_parallel.json`` under
``"chaos_replication"``.

Run:  python benchmarks/smoke_chaos_replication.py
(run_smoke.sh runs it after the incremental round trip)
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))
sys.path.insert(0, str(REPO / "src"))

from bench_parallel_build import merge_bench_json  # noqa: E402
from repro.workloads import (  # noqa: E402
    FaultSpec,
    build_chaos_cluster,
    get_scenario,
    prepare_scenario,
    run_scenario,
)

TIME_SCALE = 2.0


def main() -> None:
    started = time.perf_counter()
    prepared = prepare_scenario(get_scenario("replica_chaos"))

    # 1. the deterministic ladder: miss a publish, come back stale,
    #    let the probe sweep heal it
    cluster = build_chaos_cluster(
        prepared.taxonomy, FaultSpec(replicas=3, probe_after=1)
    )
    cluster.replicas[2].kill()
    cluster.router.publish_delta(prepared.delta, base_version=1, version=2)
    cluster.replicas[2].restart()  # rebuilt from the base snapshot: stale
    assert cluster.replicas[2].inner_version() == "v1"
    probe_resyncs = cluster.settle()
    assert probe_resyncs >= 1, "the probe sweep never triggered a resync"
    ladder = cluster.convergence()
    assert ladder["converged"], ladder
    hashes = {r["content_hash"] for r in ladder["replicas"]}
    assert hashes == {ladder["expected_hash"]}, (
        f"replicas diverged after resync: {sorted(hashes)}"
    )

    # 2. the same contract under seeded load + scheduled faults
    report = run_scenario(prepared, "router", time_scale=TIME_SCALE)
    assert report.audit is not None and report.audit["mixed_answers"] == 0, (
        f"mixed-version answers under chaos: {report.audit}"
    )
    assert report.convergence is not None and (
        report.convergence["converged"]
    ), report.convergence
    for action in report.actions:
        assert action.error is None, (
            f"action {action.label!r} failed: {action.error}"
        )

    total_seconds = time.perf_counter() - started
    merge_bench_json("chaos_replication", {
        "ladder_resyncs": ladder["resyncs"],
        "ladder_converged": ladder["converged"],
        "scenario": report.scenario,
        "scenario_mixed_answers": report.audit["mixed_answers"],
        "scenario_converged": report.convergence["converged"],
        "scenario_resyncs": report.convergence["resyncs"],
        "total_seconds": total_seconds,
        "round_trip": "kill->publish->restart->probe-resync->converged",
        "ok": True,
    })
    chains = report.convergence["resyncs"].get("resync_chains", 0)
    print(
        "chaos replication ok: ladder converged after "
        f"{probe_resyncs} probe resync(s); replica_chaos under load: "
        f"0 mixed answers, {chains} chained resync(s), "
        f"{total_seconds:.1f}s end to end"
    )


if __name__ == "__main__":
    main()
