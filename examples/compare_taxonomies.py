"""Reproduce the Table I comparison on a small world.

Builds CN-Probase plus the three baseline taxonomies (Chinese
WikiTaxonomy, Bigcilin, Probase-Tran) from the same synthetic
encyclopedia and prints the size/precision comparison, using the world's
ground truth as the annotator.

Run:  python examples/compare_taxonomies.py
"""

from repro.baselines import Bigcilin, ChineseWikiTaxonomy, ProbaseTran
from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.encyclopedia import SyntheticWorld
from repro.eval.metrics import make_oracle, sample_precision
from repro.eval.report import format_count, format_percent, render_table


def main() -> None:
    world = SyntheticWorld.generate(seed=7, n_entities=2000)
    dump = world.dump()
    oracle = make_oracle(world)

    print("building four taxonomies from the same dump...")
    taxonomies = {
        "Chinese WikiTaxonomy": ChineseWikiTaxonomy().build(dump),
        "Bigcilin": Bigcilin().build(dump),
        "Probase-Tran": ProbaseTran().build(world),
        "CN-Probase": build_cn_probase(
            dump, PipelineConfig(enable_abstract=False)
        ).taxonomy,
    }

    rows = []
    for name, taxonomy in taxonomies.items():
        stats = taxonomy.stats()
        precision = sample_precision(
            taxonomy.relations(), oracle, n_samples=2000, seed=1
        )
        rows.append([
            name,
            format_count(stats.n_entities),
            format_count(stats.n_concepts),
            format_count(stats.n_isa_total),
            format_percent(precision.precision),
        ])
    print()
    print(render_table(
        ["Taxonomy", "# entities", "# concepts", "# isA", "precision"],
        rows,
        title="Table I (synthetic scale) — CN-Probase vs baselines",
    ))


if __name__ == "__main__":
    main()
