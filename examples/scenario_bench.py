"""Scenario workloads: declare, compile, replay, read the numbers.

Walks the full repro.workloads pipeline:

1. declare a custom Scenario (zipf-hot traffic on a churn-prone world),
2. compile it twice and show the schedules are byte-identical,
3. prepare it (build the world + taxonomy once) and replay it
   open-loop against the in-process serving facade,
4. replay the built-in publish-under-load scenario and read the
   mixed-version audit (zero torn reads across the live publish).

Run:  python examples/scenario_bench.py
"""

import hashlib

from repro.workloads import (
    ArrivalSpec,
    KeyPopularity,
    Scenario,
    TrafficSpec,
    WorldSpec,
    compile_schedule,
    get_scenario,
    prepare_scenario,
    render_run_report,
    run_scenario,
)
from repro.workloads.schedule import dumps_schedule

# Replay compressed 4x: the request sequence is identical, only the
# inter-arrival gaps shrink, so the demo finishes in a few seconds.
TIME_SCALE = 4.0


def sha(schedule) -> str:
    return hashlib.sha256(
        dumps_schedule(schedule).encode("utf-8")
    ).hexdigest()[:16]


def main() -> None:
    # 1. A scenario is a frozen, JSON-round-trippable spec: traffic
    #    shape × world shape × seed. Nothing here touches a clock or
    #    an unseeded RNG (lint-tested), so it names ONE workload.
    scenario = Scenario(
        name="demo_zipf_burst",
        description="zipf hot keys + 4x bursts on an ambiguous world",
        traffic=TrafficSpec(
            n_calls=400,
            popularity=KeyPopularity(kind="zipf", zipf_exponent=1.3),
            arrival=ArrivalSpec(
                kind="burst", rate_per_s=150.0,
                burst_every_s=1.0, burst_seconds=0.25,
                burst_multiplier=4.0,
            ),
            batch_sizes=((1, 0.6), (8, 0.4)),
            miss_rate=0.10,
        ),
        world=WorldSpec(n_entities=250, alias_ambiguity=0.8),
        seed=23,
    )

    # 2. Compilation is deterministic: same scenario + seed ->
    #    byte-identical schedule JSONL. A perf regression is therefore
    #    always the code's fault, never the workload's.
    first, second = compile_schedule(scenario), compile_schedule(scenario)
    assert dumps_schedule(first) == dumps_schedule(second)
    print(f"schedule: {first.n_events} events / {first.n_calls} calls "
          f"over {first.duration_s:.1f}s, sha256 {sha(first)} "
          f"(recompiled: {sha(second)})")

    # 3. Prepare once (world -> pipeline build), then replay open-loop:
    #    requests fire at their scheduled times whether or not the
    #    server keeps up, and the lateness ledger reports the gap.
    prepared = prepare_scenario(scenario)
    report = run_scenario(prepared, "service", time_scale=TIME_SCALE)
    print()
    print(render_run_report(report))

    # 4. The built-in publish-under-load scenario: a nightly delta
    #    publishes mid-replay while batched reads hammer the store.
    #    The auditor checks every answer batch against the frozen
    #    before/after views — zero mixed answers is the contract.
    publish = prepare_scenario(get_scenario("publish_under_load"))
    report = run_scenario(publish, "service", time_scale=TIME_SCALE)
    print()
    print(render_run_report(report))
    assert report.audit is not None and report.audit["mixed_answers"] == 0


if __name__ == "__main__":
    main()
