"""Figure 1 — anatomy of an encyclopedia page and what each source yields.

Renders one synthetic page the way the paper's Figure 1 annotates 刘德华's
article — (a) bracket, (b) abstract, (c) infobox, (d) tags — and shows the
candidate isA relations each generation-module source extracts from it.

Run:  python examples/inspect_page.py
"""

from repro.core.generation.separation import BracketExtractor
from repro.core.generation.tags import TagExtractor
from repro.core.pipeline import harvest_lexicon
from repro.encyclopedia import SyntheticWorld
from repro.nlp.pmi import PMIStatistics
from repro.nlp.segmentation import Segmenter


def main() -> None:
    world = SyntheticWorld.generate(seed=11, n_entities=800)
    dump = world.dump()

    # pick a person page with all four sources present
    page = next(
        p for p in dump
        if p.bracket and p.has_abstract and p.infobox and len(p.tags) >= 2
    )

    print("=" * 60)
    print(f"page: {page.full_title}   (page_id: {page.page_id})")
    print("=" * 60)
    print(f"(a) bracket : {page.bracket}")
    print(f"(b) abstract: {page.abstract}")
    print("(c) infobox :")
    for triple in page.infobox:
        print(f"      <{triple.subject}, {triple.predicate}, {triple.value}>")
    print(f"(d) tags    : {'、'.join(page.tags)}")

    # what each source extracts
    segmenter = Segmenter(harvest_lexicon(dump))
    pmi = PMIStatistics()
    pmi.add_corpus(segmenter.segment_corpus(dump.text_corpus()))

    print("\ncandidate isA relations:")
    bracket_relations = BracketExtractor(segmenter, pmi).extract_from_page(page)
    for relation in bracket_relations:
        print(f"  [bracket] isA({page.title}, {relation.hypernym})")
    for relation in TagExtractor().extract_from_page(page):
        print(f"  [tag]     isA({page.title}, {relation.hypernym})")
    for triple in page.infobox:
        if triple.predicate in ("职业", "身份", "类型", "分类"):
            print(f"  [infobox] isA({page.title}, {triple.value})  "
                  f"(via predicate {triple.predicate!r})")

    # ground truth for comparison
    entity = world.entity(page.page_id)
    print(f"\ngold hypernyms: {'、'.join(sorted(entity.gold_hypernyms))}")


if __name__ == "__main__":
    main()
