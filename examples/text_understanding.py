"""Short-text understanding with the taxonomy (Section IV-B / Section V).

The paper motivates CN-Probase with text-understanding tasks: a question
is *covered* when the taxonomy recognises an entity or concept in it, and
recognised entities bring their hypernyms as features (the signal the
paper's short-text classification application consumes).

This example builds the taxonomy, evaluates QA coverage on an
NLPCC2016-style synthetic question set, then conceptualises a few
questions: mention → entity senses → hypernym features.

Run:  python examples/text_understanding.py
"""

from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.encyclopedia import SyntheticWorld
from repro.eval.coverage import qa_coverage
from repro.eval.qa_dataset import generate_questions
from repro.taxonomy import TaxonomyAPI


def conceptualise(api: TaxonomyAPI, text: str, mention: str) -> str:
    senses = api.men2ent(mention)
    if not senses:
        return f"  {text}\n    -> no entity recognised"
    lines = [f"  {text}"]
    for page_id in senses:
        concepts = api.get_concept(page_id)
        lines.append(f"    -> {page_id}: {('、'.join(concepts)) or '(none)'}")
    return "\n".join(lines)


def main() -> None:
    world = SyntheticWorld.generate(seed=3, n_entities=1500)
    result = build_cn_probase(
        world.dump(), PipelineConfig(enable_abstract=False)
    )
    taxonomy = result.taxonomy

    # QA coverage, the paper's protocol.
    questions = generate_questions(world, 3000, seed=2)
    report = qa_coverage(taxonomy, questions)
    print(f"QA coverage: {report}")
    print("(paper: 91.68% on 23,472 NLPCC2016 questions, "
          "2.14 concepts per covered entity)\n")

    # Conceptualisation of individual questions.
    api = TaxonomyAPI(taxonomy)
    print("conceptualised questions:")
    shown = 0
    for question in questions:
        if question.mention_kind != "entity":
            continue
        print(conceptualise(api, question.text, question.mention))
        shown += 1
        if shown == 5:
            break

    # An ambiguous mention gets every sense, each with its own concepts —
    # the disambiguation signal downstream applications use.
    ambiguous = next(
        (name for name, ids in world.mention_senses().items()
         if len(ids) > 1 and taxonomy.men2ent(name)),
        None,
    )
    if ambiguous:
        print("\nambiguous mention:")
        print(conceptualise(api, f"{ambiguous}是什么？", ambiguous))


if __name__ == "__main__":
    main()
