"""Quickstart: build a CN-Probase-style taxonomy end to end.

Generates a small synthetic encyclopedia (the stand-in for the CN-DBpedia
dump), runs the generation+verification pipeline, and pokes at the result
with the three public APIs.

Run:  python examples/quickstart.py
"""

from repro import build_cn_probase
from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.pipeline import PipelineConfig
from repro.encyclopedia import SyntheticWorld
from repro.taxonomy import TaxonomyAPI


def main() -> None:
    # 1. A 1500-entity synthetic Chinese encyclopedia.
    world = SyntheticWorld.generate(seed=42, n_entities=1500)
    dump = world.dump()
    stats = dump.stats()
    print(f"encyclopedia: {stats.n_pages} pages, {stats.n_triples} SPO "
          f"triples, {stats.n_tags} tags")

    # 2. Build the taxonomy (all four sources, all three verifiers).
    config = PipelineConfig(
        neural=NeuralGenConfig(epochs=4),
        max_generation_pages=300,  # cap the slow neural source for the demo
    )
    result = build_cn_probase(dump, config)
    taxonomy = result.taxonomy
    print(f"taxonomy: {taxonomy.stats().as_dict()}")
    print(f"verification removed: "
          f"{ {k: len(v) for k, v in result.removed_by.items()} }")

    # 3. Query it through the public APIs.
    api = TaxonomyAPI(taxonomy)
    some_entity = world.entities[0]
    senses = api.men2ent(some_entity.name)
    print(f"\nmen2ent({some_entity.name!r}) -> {senses}")
    if senses:
        concepts = api.get_concept(senses[0])
        print(f"getConcept({senses[0]!r}) -> {concepts}")
        if concepts:
            hyponyms = api.get_entity(concepts[0])
            print(f"getEntity({concepts[0]!r}) -> "
                  f"{len(hyponyms)} entities, e.g. {hyponyms[:5]}")

    # 4. Persist and reload.
    taxonomy.save("/tmp/cn_probase_quickstart.jsonl")
    from repro.taxonomy import Taxonomy

    reloaded = Taxonomy.load("/tmp/cn_probase_quickstart.jsonl")
    assert reloaded.stats() == taxonomy.stats()
    print("\nsaved + reloaded: /tmp/cn_probase_quickstart.jsonl")


if __name__ == "__main__":
    main()
