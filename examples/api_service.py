"""Serve a built taxonomy through the versioned service facade (Table II).

Replays a workload with the paper's production call mix (men2ent 53%,
getEntity 31%, getConcept 17%) through :class:`TaxonomyService` —
batched calls, an atomic snapshot swap mid-lifetime the way a nightly
rebuild would publish, and the per-API latency/hit ledger the facade
keeps across swaps.

Run:  python examples/api_service.py
"""

from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import format_count, format_percent, render_table
from repro.taxonomy import TaxonomyService, WorkloadGenerator


def main() -> None:
    world = SyntheticWorld.generate(seed=5, n_entities=1200)
    result = build_cn_probase(
        world.dump(), PipelineConfig(enable_abstract=False)
    )
    service = TaxonomyService(result.taxonomy)

    print(f"serving snapshot {service.version_id} "
          f"({result.taxonomy.stats().n_isa_total} isA relations)")
    print("replaying 50,000 API calls with the paper's call mix "
          "(batches of 32)...")
    generator = WorkloadGenerator(result.taxonomy, seed=1, miss_rate=0.05)
    generator.run_service(service, 25_000, batch_size=32)

    # A rebuild lands: publish it atomically, then keep serving.  The
    # ledger below spans both snapshots.
    new_world = SyntheticWorld.generate(seed=6, n_entities=1200)
    rebuilt = build_cn_probase(
        new_world.dump(), PipelineConfig(enable_abstract=False)
    )
    snapshot = service.swap(rebuilt.taxonomy)
    print(f"swapped in snapshot {snapshot.version_id} "
          f"(rebuild published atomically, {service.metrics.swaps} swap)")
    generator = WorkloadGenerator(rebuilt.taxonomy, seed=2, miss_rate=0.05)
    generator.run_service(service, 25_000, batch_size=32)

    metrics = service.metrics
    rows = [
        [name,
         format_count(entry.calls),
         format_percent(entry.calls / metrics.total_calls),
         format_percent(entry.hit_rate),
         f"{entry.mean_seconds * 1e6:.1f}",
         f"{entry.max_seconds * 1e6:.1f}"]
        for name, entry in (
            (n, metrics.latency(n))
            for n in ("men2ent", "getConcept", "getEntity")
        )
    ]
    print()
    print(render_table(
        ["API name", "calls", "mix", "hit rate", "mean µs", "max µs"],
        rows,
        title="Table II (replayed) — the facade's per-API ledger",
    ))

    # A couple of live queries for flavour, against the served snapshot.
    entity = next(
        e for e in new_world.entities
        if rebuilt.taxonomy.has_entity(e.page_id)
    )
    print(f"\nlive: men2ent({entity.name!r}) = {service.men2ent(entity.name)}")
    batch = [
        e.name for e in new_world.entities[1:20]
        if rebuilt.taxonomy.has_entity(e.page_id)
    ][:3]
    print(f"live: men2ent_batch({batch!r}) = {service.men2ent_batch(batch)}")


if __name__ == "__main__":
    main()
