"""Serve a built taxonomy over real HTTP and query it with the SDK.

Launches the full :mod:`repro.serving` stack — a
:class:`ShardedSnapshotStore` split over 4 key-hashed shards, a
replication-aware router (2 replicas per shard), and the stdlib HTTP
server — then drives the paper's Table-II call mix through
:class:`TaxonomyClient` over the wire, hot-swaps a rebuilt taxonomy
through the authenticated ``/admin/swap`` endpoint with zero downtime,
and prints both ledgers (client-side wire latency with p50/p95/p99
tails, server-side cluster metrics).

Run:  python examples/api_service.py
"""

import tempfile
from pathlib import Path

from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import format_count, format_percent, render_table
from repro.serving import TaxonomyClient, build_cluster, start_server
from repro.workloads import ArgumentPools, TableIICallStream, replay_calls

ADMIN_TOKEN = "example-admin-token"
SHARDS = 4
REPLICAS = 2
N_CALLS = 4_000
BATCH_SIZE = 32


def main() -> None:
    world = SyntheticWorld.generate(seed=5, n_entities=1200)
    result = build_cn_probase(
        world.dump(), PipelineConfig(enable_abstract=False)
    )

    service = build_cluster(
        result.taxonomy, shards=SHARDS, replicas=REPLICAS
    )
    server = start_server(service, port=0, admin_token=ADMIN_TOKEN)
    client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
    try:
        health = client.healthz()
        print(f"cluster up at {server.url}: "
              f"version {health['version']}, {health['shards']} shards, "
              f"{REPLICAS} replicas/shard "
              f"({result.taxonomy.stats().n_isa_total} isA relations)")

        print(f"replaying {2 * N_CALLS:,} API calls over HTTP with the "
              f"paper's call mix (batches of {BATCH_SIZE})...")
        stream = TableIICallStream(
            ArgumentPools.from_taxonomy(result.taxonomy),
            seed=1, miss_rate=0.05,
        )
        replay_calls(client, stream.generate(N_CALLS), batch_size=BATCH_SIZE)

        # A rebuild lands: save it where the server can load it, then
        # publish it atomically through the admin API.  In-flight
        # batches finish on the version they pinned; the ledgers below
        # span both versions.
        new_world = SyntheticWorld.generate(seed=6, n_entities=1200)
        rebuilt = build_cn_probase(
            new_world.dump(), PipelineConfig(enable_abstract=False)
        )
        with tempfile.TemporaryDirectory() as tmp:
            rebuilt_path = Path(tmp) / "rebuilt.jsonl"
            rebuilt.taxonomy.save(rebuilt_path)
            swapped = client.swap(str(rebuilt_path))
        print(f"hot-swapped to {swapped['version']} via /admin/swap "
              "(all shards republished in one atomic assignment)")

        stream = TableIICallStream(
            ArgumentPools.from_taxonomy(rebuilt.taxonomy),
            seed=2, miss_rate=0.05,
        )
        replay_calls(client, stream.generate(N_CALLS), batch_size=BATCH_SIZE)

        metrics = client.metrics
        rows = [
            [name,
             format_count(entry.calls),
             format_percent(entry.calls / metrics.total_calls),
             format_percent(entry.hit_rate),
             f"{entry.p50_seconds * 1e6:.0f}",
             f"{entry.p95_seconds * 1e6:.0f}",
             f"{entry.p99_seconds * 1e6:.0f}"]
            for name, entry in (
                (n, metrics.latency(n))
                for n in ("men2ent", "getConcept", "getEntity")
            )
        ]
        print()
        print(render_table(
            ["API name", "calls", "mix", "hit rate",
             "p50 µs", "p95 µs", "p99 µs"],
            rows,
            title="Table II (replayed over HTTP) — client wire latency",
        ))

        remote = client.server_metrics()
        print(f"\nserver ledger: {remote['total_calls']:,} calls served, "
              f"{remote['swaps']} swap(s), now at {remote['version']}")
        if "router" in remote:
            stats = remote["router"]["stats"]
            print(f"router: {stats['attempts']:,} replica attempts, "
                  f"{stats['failovers']} failovers")

        # A couple of live queries for flavour, over the wire.
        entity = next(
            e for e in new_world.entities
            if rebuilt.taxonomy.has_entity(e.page_id)
        )
        print(f"\nlive: men2ent({entity.name!r}) = "
              f"{client.men2ent(entity.name)}")
        batch = [
            e.name for e in new_world.entities[1:20]
            if rebuilt.taxonomy.has_entity(e.page_id)
        ][:3]
        print(f"live: men2ent_batch({batch!r}) = "
              f"{client.men2ent_batch(batch)}")

        client.shutdown_server()
        print("\nserver shut down over /admin/shutdown")
    finally:
        server.close()


if __name__ == "__main__":
    main()
