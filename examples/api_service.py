"""Serve a built taxonomy through the three public APIs (Table II).

Replays a workload with the paper's production call mix (men2ent 53%,
getEntity 31%, getConcept 17%) and prints the usage ledger the way the
paper's Table II reports it.

Run:  python examples/api_service.py
"""

from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.encyclopedia import SyntheticWorld
from repro.eval.report import format_count, format_percent, render_table
from repro.taxonomy import TaxonomyAPI, WorkloadGenerator


def main() -> None:
    world = SyntheticWorld.generate(seed=5, n_entities=1200)
    result = build_cn_probase(
        world.dump(), PipelineConfig(enable_abstract=False)
    )
    api = TaxonomyAPI(result.taxonomy)

    print("replaying 50,000 API calls with the paper's call mix...")
    generator = WorkloadGenerator(result.taxonomy, seed=1, miss_rate=0.05)
    usage = generator.run(api, 50_000)

    rows = [
        [name,
         format_count(usage.calls[name]),
         format_percent(usage.mix()[name]),
         format_percent(usage.hit_rate(name))]
        for name in ("men2ent", "getConcept", "getEntity")
    ]
    print()
    print(render_table(
        ["API name", "calls", "mix", "hit rate"],
        rows,
        title="Table II (replayed) — APIs and their usage",
    ))

    # A couple of live queries for flavour.
    entity = world.entities[0]
    print(f"\nlive: men2ent({entity.name!r}) = {api.men2ent(entity.name)}")
    ambiguous = next(
        (name for name, ids in world.mention_senses().items() if len(ids) > 1),
        None,
    )
    if ambiguous:
        print(f"live: men2ent({ambiguous!r}) = {api.men2ent(ambiguous)} "
              "(ambiguous mention, multiple senses)")


if __name__ == "__main__":
    main()
